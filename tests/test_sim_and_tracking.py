"""System simulator, results, and the stage-phase tracker."""

import pytest

from repro.core import BaryonController
from repro.core.tracking import StagePhaseTracker
from repro.sim import SimResult, SystemSimulator
from repro.workloads import StreamWorkload, ZipfWorkload

from tests.conftest import make_small_config, make_small_sim_config


def run_small(workload_cls=ZipfWorkload, n=4000, seed=2, **wl_kwargs):
    config = make_small_config()
    sim_config = make_small_sim_config()
    trace = workload_cls(
        "wl", 4 * config.layout.fast_capacity, seed=seed, **wl_kwargs
    ).generate(n)
    ctrl = BaryonController(config, seed=seed)
    trace.apply_compressibility(ctrl.oracle)
    sim = SystemSimulator(ctrl, sim_config)
    return sim.run(trace), ctrl, sim


class TestSystemSimulator:
    def test_result_sanity(self):
        result, ctrl, sim = run_small()
        assert result.instructions > 0
        assert result.cycles > 0
        assert 0.0 < result.ipc
        assert 0.0 <= result.serve_rate <= 1.0
        assert result.memory_accesses > 0
        assert result.useful_bytes == result.llc_misses * 64

    def test_warmup_excluded(self):
        """Measured counters must cover less than the whole run."""
        result, ctrl, sim = run_small()
        assert result.memory_accesses < ctrl.stats.get("accesses")

    def test_deterministic(self):
        a, _, _ = run_small(seed=5)
        b, _, _ = run_small(seed=5)
        assert a.ipc == pytest.approx(b.ipc)
        assert a.fast_traffic_bytes == b.fast_traffic_bytes

    def test_traffic_flows_to_devices(self):
        result, ctrl, _ = run_small()
        assert result.slow_traffic_bytes > 0
        assert result.fast_traffic_bytes > 0
        assert result.bandwidth_bloat > 0

    def test_case_counts_present(self):
        result, _, _ = run_small()
        assert sum(result.case_counts.values()) > 0

    def test_energy_reported(self):
        result, _, _ = run_small()
        assert result.energy is not None
        assert result.energy.total_j > 0

    def test_prefetched_lines_install_into_llc(self):
        result, ctrl, sim = run_small(workload_cls=StreamWorkload, n=3000)
        assert sim.hierarchy.stats.get("llc_prefetch_installs") > 0

    def test_stream_filtered_by_l1(self):
        """Sequential 64 B accesses mostly miss (new line each time)."""
        result, ctrl, sim = run_small(workload_cls=StreamWorkload, n=2000)
        assert result.llc_misses > 0

    def test_speedup_over(self):
        a = SimResult(instructions=1000, cycles=100.0)
        b = SimResult(instructions=1000, cycles=200.0)
        assert a.speedup_over(b) == pytest.approx(2.0)

    def test_summary_keys(self):
        result, _, _ = run_small()
        summary = result.summary()
        for key in ("ipc", "serve_rate", "bandwidth_bloat", "energy_j"):
            assert key in summary


class TestStagePhaseTracker:
    def test_breakdown_classification(self):
        t = StagePhaseTracker()
        t.tick()
        t.block_staged(1)
        t.record(1, staged=True, committed=False, is_write=False, miss=False, overflow=False)
        t.record(1, staged=True, committed=False, is_write=True, miss=True, overflow=False)
        t.record(2, staged=False, committed=True, is_write=True, miss=False, overflow=True)
        assert t.breakdown[("S", "read_hit")] == 1
        assert t.breakdown[("S", "write_miss")] == 1
        assert t.breakdown[("C", "write_overflow")] == 1

    def test_fractions_sum_to_one(self):
        t = StagePhaseTracker()
        for miss in (True, False, False):
            t.record(1, True, False, False, miss, False)
        fractions = t.breakdown_fractions("S")
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert t.miss_rate("S") == pytest.approx(1 / 3)

    def test_untracked_accesses_ignored(self):
        t = StagePhaseTracker()
        t.record(1, staged=False, committed=False, is_write=False, miss=True, overflow=False)
        assert not t.breakdown

    def test_phase_binning(self):
        t = StagePhaseTracker(bins=4)
        t.block_staged(7)
        # Early misses, late hits: bins must show a decreasing trend.
        for i in range(40):
            t.tick()
            t.record(7, True, False, False, miss=i < 10, overflow=False)
        t.block_unstaged(7, committed=True)
        dist = t.mpki_distribution()
        assert dist[0]["count"] == 1
        assert dist[0]["mean"] > dist[-1]["mean"]

    def test_phase_requires_events(self):
        t = StagePhaseTracker()
        t.block_staged(9)
        t.block_unstaged(9, committed=False)  # no events: not sampled
        assert all(b.get("count", 0.0) == 0.0 for b in t.mpki_distribution())

    def test_sample_cap(self):
        t = StagePhaseTracker(sample_blocks=1)
        for block in (1, 2):
            t.block_staged(block)
            for _ in range(4):
                t.tick()
                t.record(block, True, False, False, miss=True, overflow=False)
            t.block_unstaged(block, committed=True)
        assert t._sampled_phases == 1

    def test_tracker_wired_into_controller(self):
        config = make_small_config()
        tracker = StagePhaseTracker()
        ctrl = BaryonController(config, tracker=tracker, seed=1)
        trace = ZipfWorkload("z", 4 * config.layout.fast_capacity, seed=3).generate(3000)
        trace.apply_compressibility(ctrl.oracle)
        for addr, w in zip(trace.addrs, trace.writes):
            ctrl.access(int(addr), bool(w))
        assert any(cat == "S" for cat, _ in tracker.breakdown)

    def test_finalize_flushes_open_phases(self):
        t = StagePhaseTracker()
        t.block_staged(3)
        for _ in range(8):
            t.tick()
            t.record(3, True, False, False, miss=True, overflow=False)
        # Phase never committed/evicted: only finalize() can sample it.
        assert t._sampled_phases == 0
        t.finalize()
        assert t._sampled_phases == 1
        assert not t._phases
        t.finalize()  # idempotent
        assert t._sampled_phases == 1

    def test_events_bounded_after_sample_cap(self):
        t = StagePhaseTracker(sample_blocks=1)
        t.block_staged(1)
        t.block_staged(2)
        for _ in range(2):
            t.tick()
            t.record(1, True, False, False, miss=True, overflow=False)
            t.record(2, True, False, False, miss=True, overflow=False)
        t.block_unstaged(1, committed=True)  # reaches the sample cap
        assert t._sampled_phases == 1
        events_before = len(t._phases[2].events)
        for _ in range(100):
            t.tick()
            t.record(2, True, False, False, miss=True, overflow=False)
        # Beyond the cap the phase can never be sampled, so buffering
        # its events would only grow memory without bound.
        assert len(t._phases[2].events) == events_before
        # New phases are not even opened past the cap.
        t.block_staged(5)
        assert 5 not in t._phases

    def test_simulator_run_finalizes_tracker(self):
        config = make_small_config()
        tracker = StagePhaseTracker()
        ctrl = BaryonController(config, tracker=tracker, seed=1)
        sim = SystemSimulator(ctrl, make_small_sim_config())
        trace = ZipfWorkload("z", 4 * config.layout.fast_capacity, seed=3).generate(3000)
        trace.apply_compressibility(ctrl.oracle)
        sim.run(trace)
        assert not tracker._phases
