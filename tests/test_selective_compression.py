"""Selective compression: the paper's future-work extension."""

import dataclasses

import pytest

from repro.common.config import CompressionConfig
from repro.common.errors import ConfigurationError
from repro.compression.synthetic import PROFILE_LIBRARY, SyntheticCompressibility
from repro.core import BaryonController

from tests.conftest import make_small_config


def make(selective, profile_name, threshold=1.3):
    comp = CompressionConfig(selective=selective, selective_threshold=threshold)
    config = dataclasses.replace(make_small_config(), compression=comp)
    ctrl = BaryonController(config, seed=1)
    ctrl.oracle.set_default_profile(PROFILE_LIBRARY[profile_name])
    return ctrl


class TestSelectiveCompression:
    def test_incompressible_regions_skip(self):
        ctrl = make(True, "incompressible")
        ctrl.access(0, False)
        assert ctrl.stats.get("compression_skips") == 1
        found = ctrl.stage.lookup_sub_block(0, 0, 0)
        assert found[1].slots[found[2]].cf == 1

    def test_compressible_regions_still_compress(self):
        ctrl = make(True, "high")
        seen_wide = False
        for block in range(24):
            ctrl.access(block * 2048, False)
            hit = ctrl.stage.lookup_sub_block(block // 8, block % 8, 0)
            if hit is not None and hit[1].slots[hit[2]].cf > 1:
                seen_wide = True
        assert seen_wide
        assert ctrl.stats.get("compression_skips") == 0

    def test_disabled_by_default(self):
        ctrl = make(False, "incompressible")
        ctrl.access(0, False)
        assert ctrl.stats.get("compression_skips") == 0

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            CompressionConfig(selective=True, selective_threshold=0.5)

    def test_oracle_without_profiles_never_skips(self):
        from repro.compression.synthetic import NullCompressibility

        comp = CompressionConfig(selective=True)
        config = dataclasses.replace(make_small_config(), compression=comp)
        ctrl = BaryonController(config, seed=1)
        ctrl.oracle = NullCompressibility()
        ctrl.access(0, False)
        assert ctrl.stats.get("compression_skips") == 0

    def test_selective_reduces_slow_fill_traffic_on_bad_data(self):
        """On incompressible data, skipping avoids pointless wide fetches
        the oracle would occasionally approve."""
        on = make(True, "low")
        off = make(False, "low")
        import random

        rng = random.Random(3)
        addrs = [
            (rng.randrange(4 * on.config.layout.fast_capacity) // 64) * 64
            for _ in range(1500)
        ]
        for addr in addrs:
            on.access(addr, False)
        for addr in addrs:
            off.access(addr, False)
        assert on.devices.slow.stats.get("fill_read_bytes") <= off.devices.slow.stats.get(
            "fill_read_bytes"
        )
