"""Fast-area eviction policies beyond LRU/FIFO (Sec. III-E options)."""

import dataclasses
import random

import pytest

from repro.common.errors import LayoutError
from repro.common.config import Geometry
from repro.core import BaryonController
from repro.core.fast_area import FastArea, FastBlockState

from tests.conftest import make_small_config
from tests.test_controller_invariants import check_invariants, drive


def filled_area(replacement, ways=3):
    area = FastArea(1, ways, Geometry(), replacement)
    for way in range(ways):
        area.install(0, way, FastBlockState(super_id=way * 8))
    return area


class TestPolicies:
    def test_lfu_evicts_least_frequent(self):
        area = filled_area("lfu")
        for _ in range(3):
            area.touch(0, 0)
        area.touch(0, 2)
        assert area.victim_way(0) == 1

    def test_clock_gives_second_chance(self):
        area = filled_area("clock")
        area.touch(0, 0)  # referenced
        victim = area.victim_way(0)
        assert victim in (1, 2)

    def test_clock_clears_bits_when_all_referenced(self):
        area = filled_area("clock")
        for way in range(3):
            area.touch(0, way)
        victim = area.victim_way(0)
        assert 0 <= victim < 3
        # Bits were cleared by the sweep: the next call has a real victim.
        assert 0 <= area.victim_way(0) < 3

    def test_random_is_seed_deterministic(self):
        a = filled_area("random")
        b = filled_area("random")
        assert [a.victim_way(0) for _ in range(5)] == [
            b.victim_way(0) for _ in range(5)
        ]

    def test_unknown_policy_rejected(self):
        with pytest.raises(LayoutError):
            FastArea(1, 2, Geometry(), "belady")

    def test_free_way_always_preferred(self):
        area = FastArea(1, 2, Geometry(), "random")
        area.install(0, 0, FastBlockState(super_id=0))
        assert area.victim_way(0) == 1


class TestControllerWithPolicies:
    @pytest.mark.parametrize("policy", ["lfu", "clock", "random"])
    def test_invariants_hold_under_every_policy(self, policy):
        config = dataclasses.replace(make_small_config(), fast_replacement=policy)
        ctrl = BaryonController(config, seed=7)
        assert ctrl.fast_area.replacement == policy
        drive(ctrl, 3000, seed=19, footprint_bytes=4 * config.layout.fast_capacity)
        check_invariants(ctrl)

    def test_auto_picks_paper_defaults(self):
        cache = BaryonController(make_small_config(), seed=1)
        assert cache.fast_area.replacement == "lru"
        fa = BaryonController(
            make_small_config(flat=1.0, fully_associative=True), seed=1
        )
        assert fa.fast_area.replacement == "fifo"
