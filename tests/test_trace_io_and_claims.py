"""Trace persistence and the paper's on-chip metadata claims in action."""

import numpy as np
import pytest

from repro.core import BaryonController
from repro.workloads import ZipfWorkload, build_workload

from tests.conftest import make_small_config


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = build_workload("YCSB-B", 4 << 20, n_accesses=500, seed=3)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = type(trace).load(path)
        assert loaded.name == trace.name
        assert loaded.footprint_bytes == trace.footprint_bytes
        assert loaded.default_profile == trace.default_profile
        assert loaded.regions == trace.regions
        assert (loaded.addrs == trace.addrs).all()
        assert (loaded.writes == trace.writes).all()
        assert (loaded.igaps == trace.igaps).all()
        assert (loaded.cores == trace.cores).all()

    def test_roundtrip_without_regions(self, tmp_path):
        trace = ZipfWorkload("z", 2 << 20, seed=1).generate(200)
        path = tmp_path / "plain.npz"
        trace.save(path)
        loaded = type(trace).load(path)
        assert loaded.regions == []
        assert len(loaded) == len(trace)

    def test_loaded_trace_drives_simulation(self, tmp_path):
        from repro.sim import SystemSimulator
        from tests.conftest import make_small_sim_config

        trace = build_workload("YCSB-B", 4 << 20, n_accesses=1500, seed=3)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = type(trace).load(path)
        ctrl = BaryonController(make_small_config(), seed=1)
        loaded.apply_compressibility(ctrl.oracle)
        result = SystemSimulator(ctrl, make_small_sim_config()).run(loaded)
        assert result.memory_accesses > 0


class TestMetadataClaimsInAction:
    def test_remap_cache_hit_rate_above_90_percent(self):
        """Sec. III-B/III-C: the 32 kB remap cache achieves >90% hit rates
        on workloads with reasonable locality."""
        config = make_small_config()
        ctrl = BaryonController(config, seed=2)
        trace = ZipfWorkload(
            "z", 2 * config.layout.fast_capacity, seed=4, theta=1.0
        ).generate(8000)
        trace.apply_compressibility(ctrl.oracle)
        for addr, w in zip(trace.addrs, trace.writes):
            ctrl.access(int(addr), bool(w))
        assert ctrl.remap_cache.hit_rate > 0.9

    def test_sram_budget_comparable_to_prior_work(self):
        """Sec. III-B: stage tag array + remap cache ~= 480 kB at full
        scale (64 MB stage)."""
        from repro.common.config import BaryonConfig
        from repro.metadata.remap_cache import RemapCache
        from repro.metadata.stage_tag import StageTagArray

        stage_tags = StageTagArray(8192, 4)
        remap_cache = RemapCache(256, 8)
        total = stage_tags.storage_bytes() + remap_cache.storage_bytes(
            entry_bytes=2, tag_bytes=0
        )
        assert total == 480 * 1024
