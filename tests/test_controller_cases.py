"""Directed tests of the Baryon access flow (Fig. 6, cases 1-5)."""

import dataclasses

import pytest

from repro.common.config import CommitConfig
from repro.core import AccessCase, BaryonController
from repro.core.tracking import StagePhaseTracker

from tests.conftest import make_small_config


class ScriptedOracle:
    """A compressibility oracle with programmable answers."""

    def __init__(self, cf=2, zero_blocks=(), overflow_on_write=False):
        self.cf = cf
        self.zero_blocks = set(zero_blocks)
        self.overflow_on_write = overflow_on_write
        self._overflowed = set()

    def fits(self, block_id, start_sub, n_sub, cacheline_aligned=True):
        if n_sub == 1:
            return True
        if (block_id, start_sub) in self._overflowed:
            return False
        return n_sub <= self.cf

    def is_zero(self, block_id, start_sub, n_sub):
        return block_id in self.zero_blocks

    def max_cf(self, block_id, sub_index, cacheline_aligned=True):
        return self.cf

    def note_write(self, block_id, sub_index):
        if self.overflow_on_write:
            start = (sub_index // self.cf) * self.cf
            self._overflowed.add((block_id, start))
            return True
        return False

    def version_of(self, block_id):
        return 0


def make_controller(oracle=None, tracker=None, **config_kwargs):
    config = make_small_config(**config_kwargs)
    ctrl = BaryonController(config, tracker=tracker, seed=1)
    if oracle is not None:
        ctrl.oracle = oracle
    return ctrl


BLOCK = 2048


class TestCase5BlockMiss:
    def test_first_access_is_block_miss(self):
        ctrl = make_controller(ScriptedOracle(cf=1))
        result = ctrl.access(0, False)
        assert result.case is AccessCase.BLOCK_MISS
        assert not result.served_fast

    def test_miss_stages_the_fetched_range(self):
        ctrl = make_controller(ScriptedOracle(cf=2))
        ctrl.access(0, False)
        g = ctrl.geometry
        found = ctrl.stage.lookup_sub_block(0, 0, 0)
        assert found is not None
        slot = found[1].slots[found[2]]
        assert slot.cf == 2 and slot.sub_start == 0

    def test_fetch_range_respects_alignment(self):
        ctrl = make_controller(ScriptedOracle(cf=4))
        ctrl.access(5 * 256, False)  # sub-block 5 -> quad 4-7
        found = ctrl.stage.lookup_sub_block(0, 0, 5)
        slot = found[1].slots[found[2]]
        assert (slot.sub_start, slot.cf) == (4, 4)

    def test_write_miss_stages_dirty(self):
        ctrl = make_controller(ScriptedOracle(cf=1))
        ctrl.access(64, True)
        found = ctrl.stage.lookup_sub_block(0, 0, 0)
        assert found[1].slots[found[2]].dirty

    def test_slow_traffic_for_raw_range(self):
        ctrl = make_controller(ScriptedOracle(cf=4))
        ctrl.access(0, False)
        # Full 4-sub-block raw fetch: 1024 B from slow.
        assert ctrl.devices.slow.stats.get("read_bytes") == 1024


class TestCase1StageHit:
    def test_second_access_hits_stage(self):
        ctrl = make_controller(ScriptedOracle(cf=2))
        ctrl.access(0, False)
        result = ctrl.access(64, False)
        assert result.case is AccessCase.STAGE_HIT
        assert result.served_fast

    def test_compressed_hit_prefetches_chunk_lines(self):
        ctrl = make_controller(ScriptedOracle(cf=2))
        ctrl.access(0, False)
        result = ctrl.access(0, False)
        # CF=2 chunk holds 2 cachelines; the other one is installed.
        assert len(result.prefetched_lines) == 1
        assert result.prefetched_lines[0] == 64

    def test_uncompressed_hit_no_prefetch_no_decompress(self):
        ctrl = make_controller(ScriptedOracle(cf=1))
        ctrl.access(0, False)
        result = ctrl.access(0, False)
        assert result.prefetched_lines == []

    def test_decompression_latency_charged(self):
        slow = make_controller(ScriptedOracle(cf=2))
        slow.access(0, False)
        hit_compressed = slow.access(0, False)
        fast = make_controller(ScriptedOracle(cf=1))
        fast.access(0, False)
        hit_raw = fast.access(0, False)
        delta = hit_compressed.latency_cycles - hit_raw.latency_cycles
        assert delta == pytest.approx(
            slow.config.compression.decompression_latency_cycles
        )

    def test_write_hit_marks_dirty(self):
        ctrl = make_controller(ScriptedOracle(cf=2))
        ctrl.access(0, False)
        ctrl.access(0, True)
        found = ctrl.stage.lookup_sub_block(0, 0, 0)
        assert found[1].slots[found[2]].dirty

    def test_write_overflow_splits_range(self):
        ctrl = make_controller(ScriptedOracle(cf=2, overflow_on_write=True))
        ctrl.access(0, False)  # stages subs 0-1 at CF 2
        result = ctrl.access(0, True)
        assert result.write_overflow
        assert ctrl.stats.get("stage_write_overflows") == 1
        # Both sub-blocks survive, now in separate CF-1 slots.
        for sub in (0, 1):
            found = ctrl.stage.lookup_sub_block(0, 0, sub)
            assert found is not None
            assert found[1].slots[found[2]].cf == 1
            assert found[1].slots[found[2]].dirty


class TestCase3StageMiss:
    def test_other_sub_block_misses_then_stages(self):
        ctrl = make_controller(ScriptedOracle(cf=1))
        ctrl.access(0, False)
        result = ctrl.access(4 * 256, False)
        assert result.case is AccessCase.STAGE_MISS
        assert ctrl.stage.lookup_sub_block(0, 0, 4) is not None

    def test_miss_increments_entry_misscnt(self):
        ctrl = make_controller(ScriptedOracle(cf=1))
        ctrl.access(0, False)
        set_index = ctrl.stage.set_index_of(0)
        way, entry = ctrl.stage.lookup_block(0, 0)
        before = entry.miss_count
        ctrl.access(4 * 256, False)
        assert entry.miss_count == before + 1

    def test_fetch_never_duplicates_staged_subs(self):
        oracle = ScriptedOracle(cf=4)
        ctrl = make_controller(oracle)
        ctrl.access(0, False)  # stages quad 0-3
        ctrl.access(4 * 256, False)  # stages quad 4-7
        way, entry = ctrl.stage.lookup_block(0, 0)
        covered = []
        for slot in entry.slots:
            if slot is not None:
                covered.extend(slot.sub_blocks)
        assert sorted(covered) == sorted(set(covered))


class TestCommitAndCase2:
    def drive_commit(self, ctrl, super_base=0):
        """Fill one stage set past capacity so block-level replacement
        commits the LRU victim."""
        n = ctrl.stage.num_sets
        sbs = ctrl.geometry.super_block_size
        for i in range(ctrl.stage.ways + 1):
            ctrl.access(super_base + i * n * sbs, False)

    def test_commit_moves_block_to_fast_area(self):
        ctrl = make_controller(
            ScriptedOracle(cf=1), commit=CommitConfig(commit_all=True)
        )
        self.drive_commit(ctrl)
        assert ctrl.stats.get("commits") >= 1
        entry = ctrl.remap_table.get(0)
        assert entry.is_remapped
        assert ctrl.fast_area.find_block(0, 0) is not None

    def test_committed_hit_is_case2(self):
        ctrl = make_controller(
            ScriptedOracle(cf=1), commit=CommitConfig(commit_all=True)
        )
        self.drive_commit(ctrl)
        result = ctrl.access(0, False)
        assert result.case is AccessCase.COMMIT_HIT
        assert result.served_fast

    def test_committed_absent_sub_is_case4_bypass(self):
        ctrl = make_controller(
            ScriptedOracle(cf=1), commit=CommitConfig(commit_all=True)
        )
        self.drive_commit(ctrl)
        result = ctrl.access(7 * 256, False)  # sub 7 never fetched
        assert result.case is AccessCase.COMMIT_MISS
        assert not result.served_fast
        # Bypass must not stage anything (Rule 3).
        assert ctrl.stage.lookup_block(0, 0) is None

    def test_commit_write_overflow_evicts(self):
        oracle = ScriptedOracle(cf=2, overflow_on_write=True)
        ctrl = make_controller(oracle, commit=CommitConfig(commit_all=True))
        self.drive_commit(ctrl)
        assert ctrl.remap_table.get(0).is_remapped
        result = ctrl.access(0, True)
        assert result.case is AccessCase.COMMIT_HIT
        assert result.write_overflow
        assert ctrl.stats.get("commit_write_overflows") == 1

    def test_eviction_preserves_cf_hints(self):
        ctrl = make_controller(
            ScriptedOracle(cf=2), commit=CommitConfig(commit_all=True)
        )
        self.drive_commit(ctrl)
        # Evict block 0's physical block via the overflow path.
        set_index = ctrl.fast_area.set_of_super(0)
        way, _ = ctrl.fast_area.find_block(0, 0)
        ctrl._evict_fast_block(1e9, set_index, way)
        assert not ctrl.remap_table.get(0).is_remapped
        assert 0 in ctrl._cf_hints
        cf2, cf4, _ = ctrl._cf_hints[0]
        assert cf2 or cf4


class TestZeroBlocks:
    def test_zero_block_staged_without_traffic(self):
        ctrl = make_controller(ScriptedOracle(cf=1, zero_blocks={0}))
        result = ctrl.access(0, False)
        assert ctrl.stats.get("zero_block_stages") == 1
        assert ctrl.devices.slow.stats.get("read_bytes") == 0
        # Every sub-block of the zero block now hits.
        hit = ctrl.access(7 * 256, False)
        assert hit.case is AccessCase.STAGE_HIT

    def test_zero_break_on_write(self):
        oracle = ScriptedOracle(cf=1, zero_blocks={0})
        ctrl = make_controller(oracle)
        ctrl.access(0, False)
        oracle.zero_blocks.clear()  # the write makes it non-zero
        ctrl.access(0, True)
        assert ctrl.stats.get("stage_zero_breaks") == 1
        found = ctrl.stage.lookup_sub_block(0, 0, 0)
        assert found is not None and not found[1].slots[found[2]].zero


class TestMetadataPath:
    def test_remap_table_read_on_remap_cache_miss(self):
        ctrl = make_controller(ScriptedOracle(cf=1))
        ctrl.access(0, False)
        assert ctrl.stats.get("remap_table_reads") == 1
        ctrl.access(64, False)
        assert ctrl.stats.get("remap_table_reads") == 1  # now cached

    def test_storage_report(self):
        ctrl = make_controller(ScriptedOracle())
        report = ctrl.storage_report()
        assert report["remap_cache_bytes"] == pytest.approx(32 * 1024, rel=0.3)
        assert report["stage_tag_array_bytes"] > 0

    def test_serve_rate_counts(self):
        ctrl = make_controller(ScriptedOracle(cf=1))
        ctrl.access(0, False)
        ctrl.access(0, False)
        assert ctrl.serve_rate() == pytest.approx(0.5)


class TestTrackerIntegration:
    def test_stage_phase_recorded(self):
        tracker = StagePhaseTracker()
        ctrl = make_controller(
        	ScriptedOracle(cf=1), tracker=tracker,
        	commit=CommitConfig(commit_all=True),
        )
        n = ctrl.stage.num_sets
        sbs = ctrl.geometry.super_block_size
        for i in range(ctrl.stage.ways + 1):
            for sub in range(4):
                ctrl.access(i * n * sbs + sub * 256, False)
        assert tracker.breakdown  # S-category events recorded
        assert any(cat == "S" for cat, _ in tracker.breakdown)
