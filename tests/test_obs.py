"""The observability layer: tracer, metrics registry, profiler, wiring.

Includes the PR's acceptance check: with tracing enabled on a small
synthetic workload, the emitted event stream reconstructs the exact
access-case breakdown the controller's ``CounterGroup`` reports.
"""

from __future__ import annotations

import json

import pytest

from repro.baselines import DiceCache, Hybrid2, SimpleCache
from repro.core import BaryonController
from repro.devices.rowbuffer import RowBufferModel
from repro.obs import (
    EVENT_SCHEMA,
    NULL_PROFILER,
    NULL_TRACER,
    EventTracer,
    MetricsRegistry,
    PhaseProfiler,
    attach_observability,
    case_breakdown,
    collect_run_metrics,
    load_jsonl,
)
from repro.obs.metrics import Histogram, LabeledCounter, TimeSeries
from repro.sim import SystemSimulator
from repro.workloads import ZipfWorkload

from tests.conftest import make_small_config, make_small_sim_config


def run_traced(
    n=3000, seed=3, tracer=None, metrics=None, profiler=None, **config_kwargs
):
    config = make_small_config(**config_kwargs)
    sim_config = make_small_sim_config()
    trace = ZipfWorkload("wl", 4 * config.layout.fast_capacity, seed=seed).generate(n)
    ctrl = BaryonController(config, seed=seed, tracer=tracer, metrics=metrics)
    trace.apply_compressibility(ctrl.oracle)
    sim = SystemSimulator(ctrl, sim_config, metrics=metrics, profiler=profiler)
    return sim.run(trace), ctrl, sim


# --------------------------------------------------------------------- tracer
class TestEventTracer:
    def test_emit_and_iterate(self):
        tracer = EventTracer(capacity=16)
        tracer.emit("access", case="stage_hit", latency=1.0)
        tracer.emit("writeback", block=3, bytes=256, kind="stage_dirty")
        assert len(tracer) == 2
        assert [e["type"] for e in tracer.events()] == ["access", "writeback"]
        assert next(tracer.events("access"))["case"] == "stage_hit"
        assert tracer.counts_by_type() == {"access": 1, "writeback": 1}

    def test_sequence_numbers_are_global(self):
        tracer = EventTracer()
        tracer.emit("a")
        tracer.emit("b")
        assert [e["seq"] for e in tracer.events()] == [1, 2]

    def test_ring_drops_oldest(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.emit("access", i=i)
        assert len(tracer) == 4
        assert [e["i"] for e in tracer.events()] == [6, 7, 8, 9]
        assert tracer.emitted == 10
        assert tracer.dropped == 6

    def test_sampling_keeps_one_in_n(self):
        tracer = EventTracer(sample_every=10)
        for _ in range(100):
            tracer.emit("access")
        assert tracer.emitted == 100
        assert tracer.sampled == 10
        assert len(tracer) == 10

    def test_sink_receives_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as sink:
            tracer = EventTracer(sink=sink)
            tracer.emit("access", case="stage_hit")
            tracer.close()
        events = load_jsonl(str(path))
        assert events == [{"seq": 1, "type": "access", "case": "stage_hit"}]

    def test_dump_and_load_roundtrip(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("remap_cache", super=7, hit=True)
        tracer.emit("access", case="commit_hit")
        path = tmp_path / "t.jsonl"
        assert tracer.dump_jsonl(str(path)) == 2
        assert load_jsonl(str(path)) == list(tracer.events())

    def test_clear(self):
        tracer = EventTracer()
        tracer.emit("a")
        tracer.clear()
        assert len(tracer) == 0 and tracer.emitted == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)
        with pytest.raises(ValueError):
            EventTracer(sample_every=0)

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("access", case="x")  # no-op, no error
        assert len(NULL_TRACER) == 0

    def test_case_breakdown_helper(self):
        events = [
            {"type": "access", "case": "stage_hit"},
            {"type": "access", "case": "stage_hit"},
            {"type": "access", "case": "block_miss"},
            {"type": "writeback", "kind": "stage_dirty"},
        ]
        assert case_breakdown(events) == {"stage_hit": 2, "block_miss": 1}

    def test_schema_names_known_types(self):
        assert {"access", "commit_decision", "stage_insert", "stage_evict",
                "remap_cache", "rowbuffer", "writeback"} <= set(EVENT_SCHEMA)


# -------------------------------------------------------------------- metrics
class TestLabeledCounter:
    def test_inc_and_value(self):
        c = LabeledCounter("n", label_names=("case",))
        c.inc(2, case="stage_hit")
        c.inc(case="stage_hit")
        c.inc(case="block_miss")
        assert c.value(case="stage_hit") == 3
        assert c.value(case="block_miss") == 1
        assert c.value(case="never") == 0

    def test_label_mismatch_rejected(self):
        c = LabeledCounter("n", label_names=("case",))
        with pytest.raises(ValueError):
            c.inc(design="x")

    def test_exposition(self):
        c = LabeledCounter("n", help="h", label_names=("case",))
        c.inc(5, case="a")
        text = "\n".join(c.exposition())
        assert "# TYPE n counter" in text
        assert 'n{case="a"} 5' in text


class TestHistogram:
    def test_observe_buckets_and_stats(self):
        h = Histogram("lat", buckets=(10, 100, 1000))
        for v in (5, 50, 500, 5000):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.total == 4
        assert h.sum == 5555
        assert h.min == 5 and h.max == 5000
        assert h.mean == pytest.approx(5555 / 4)

    def test_quantile_estimates(self):
        h = Histogram("lat", buckets=(10, 100, 1000))
        for _ in range(99):
            h.observe(5)
        h.observe(5000)
        assert h.quantile(0.5) == 10
        assert h.quantile(1.0) == 5000
        assert h.quantile(0.0) == 10
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty(self):
        h = Histogram("lat", buckets=(1,))
        assert h.quantile(0.5) == 0.0 and h.mean == 0.0

    def test_exposition_is_cumulative(self):
        h = Histogram("lat", help="h", buckets=(10, 100))
        h.observe(5)
        h.observe(50)
        h.observe(500)
        lines = h.exposition()
        assert 'lat_bucket{le="10"} 1' in lines
        assert 'lat_bucket{le="100"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert "lat_count 3" in lines


class TestTimeSeries:
    def test_window_sampling(self):
        ts = TimeSeries("s", every=10)
        for i in range(100):
            ts.tick(float(i))
        assert len(ts.points) == 10
        assert ts.points[0] == (10, 9.0)
        assert ts.last == 99.0

    def test_decimation_bounds_memory(self):
        ts = TimeSeries("s", every=1, capacity=8)
        for i in range(100):
            ts.tick(float(i))
        assert len(ts.points) <= 8 + 1
        assert ts.every > 1


class TestMetricsRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x", labels=("l",))
        b = reg.counter("x", labels=("l",))
        assert a is b
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_json_and_prometheus_export(self):
        reg = MetricsRegistry()
        reg.counter("c", help="ch", labels=("k",)).inc(3, k="v")
        reg.histogram("h", buckets=(1, 2)).observe(1.5)
        reg.series("s", every=1).tick(0.5)
        blob = reg.to_json()
        assert blob["c"]["values"] == [{"labels": {"k": "v"}, "value": 3}]
        assert blob["h"]["count"] == 1
        assert blob["s"]["points"] == [[1, 0.5]]
        text = reg.to_prometheus()
        assert 'c{k="v"} 3' in text
        assert "# TYPE h histogram" in text
        assert "# TYPE s gauge" in text
        json.dumps(blob)  # must be serializable

    def test_ingest_counter_group(self):
        from repro.common.stats import CounterGroup

        group = CounterGroup("g")
        group.inc("hits", 4)
        group.inc("misses", 1)
        reg = MetricsRegistry()
        counter = reg.ingest_counter_group(
            "repro_test_total", group, label="outcome", design="baryon"
        )
        assert counter.value(design="baryon", outcome="hits") == 4
        assert counter.value(design="baryon", outcome="misses") == 1


# ------------------------------------------------------------------- profiler
class TestPhaseProfiler:
    def test_phase_context_accumulates(self):
        clock_values = iter([0.0, 1.5])
        p = PhaseProfiler(clock=lambda: next(clock_values))
        with p.phase("warmup"):
            pass
        assert p.seconds["warmup"] == 1.5

    def test_add_and_count(self):
        p = PhaseProfiler()
        p.add("controller", 0.25, calls=10)
        p.add("controller", 0.75, calls=10)
        p.count("accesses", 100)
        report = p.report()
        assert report["phases"]["controller"]["seconds"] == 1.0
        assert report["phases"]["controller"]["calls"] == 20
        assert report["counters"]["accesses"] == 100
        assert "controller" in p.format_report()

    def test_null_profiler(self):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.phase("x"):
            NULL_PROFILER.add("y", 1.0)
            NULL_PROFILER.count("z")
        assert NULL_PROFILER.report() == {"phases": {}, "counters": {}}


# ------------------------------------------------------- wiring + integration
class TestAttachObservability:
    def test_attach_to_baryon_reaches_components(self):
        ctrl = BaryonController(make_small_config())
        tracer = EventTracer()
        attach_observability(ctrl, tracer)
        assert ctrl.obs is tracer
        assert ctrl.stage.obs is tracer
        assert ctrl.policy.obs is tracer
        assert ctrl.remap_cache.obs is tracer

    def test_attach_to_baselines(self):
        config = make_small_config()
        tracer = EventTracer()
        for ctrl in (SimpleCache(config), DiceCache(config)):
            attach_observability(ctrl, tracer)
            assert ctrl.obs is tracer
            ctrl.access(0, False)
            ctrl.access(64, True)
        assert sum(1 for _ in tracer.events("access")) == 4

    def test_attach_unwraps_hybrid2(self):
        ctrl = Hybrid2(make_small_config(flat=0.75, fully_associative=True))
        tracer = EventTracer()
        attach_observability(ctrl, tracer)
        assert ctrl._inner.obs is tracer
        ctrl.access(0, False)
        assert any(tracer.events("access"))

    def test_rowbuffer_events(self):
        rb = RowBufferModel(channels=1, banks_per_channel=2, row_bytes=2048)
        tracer = EventTracer()
        rb.obs = tracer
        rb.access(0)
        rb.access(64)
        rb.access(4096)  # same bank, different row -> close + open
        events = list(tracer.events("rowbuffer"))
        assert [e["hit"] for e in events] == [False, True, False]
        assert events[2]["closed"] == 0


class TestTracedRun:
    def test_trace_reconstructs_case_breakdown(self):
        """Acceptance: JSONL event stream == controller CounterGroup."""
        tracer = EventTracer(capacity=1 << 20)
        _, ctrl, _ = run_traced(tracer=tracer)
        expected = {
            key[len("case_"):]: value
            for key, value in ctrl.stats.items()
            if key.startswith("case_")
        }
        assert sum(expected.values()) == ctrl.stats.get("accesses")
        assert tracer.case_breakdown() == expected

    def test_commit_decisions_match_policy_stats(self):
        tracer = EventTracer(capacity=1 << 20)
        _, ctrl, _ = run_traced(tracer=tracer)
        decisions = list(tracer.events("commit_decision"))
        assert len(decisions) == ctrl.policy.stats.total("commits", "evictions")
        assert all(
            {"commit", "benefit", "stability", "dirty"} <= set(e) for e in decisions
        )

    def test_remap_cache_events_match_stats(self):
        tracer = EventTracer(capacity=1 << 20)
        _, ctrl, _ = run_traced(tracer=tracer)
        probes = list(tracer.events("remap_cache"))
        assert len(probes) == ctrl.remap_cache.stats.total("hits", "misses")
        hits = sum(1 for e in probes if e["hit"])
        assert hits == ctrl.remap_cache.stats.get("hits")

    def test_metrics_registry_populated(self):
        registry = MetricsRegistry()
        result, ctrl, _ = run_traced(metrics=registry)
        latency = registry.get("repro_mem_latency_cycles")
        # Observed once per demand LLC miss; writebacks/prefetch installs
        # also reach the controller, so its counter is an upper bound.
        assert 0 < latency.total <= ctrl.stats.get("accesses")
        assert registry.get("repro_fetch_sub_blocks").total > 0
        assert registry.get("repro_serve_rate").points
        collect_run_metrics(registry, ctrl, result=result)
        cases = registry.get("repro_access_cases_total")
        for key, value in ctrl.stats.items():
            if key.startswith("case_"):
                assert cases.value(case=key[len("case_"):]) == value
        assert "repro_device_bytes_total" in registry
        text = registry.to_prometheus()
        assert "repro_access_cases_total" in text

    def test_profiler_records_phases(self):
        profiler = PhaseProfiler()
        _, _, _ = run_traced(n=800, profiler=profiler)
        report = profiler.report()
        assert {"warmup", "measured", "hierarchy", "controller"} <= set(
            report["phases"]
        )
        assert report["counters"]["accesses"] == 800
        assert report["phases"]["controller"]["calls"] > 0

    def test_untraced_run_unchanged(self):
        """Observability off must not perturb simulation results."""
        plain, _, _ = run_traced(seed=9)
        traced, _, _ = run_traced(seed=9, tracer=EventTracer(capacity=1 << 20))
        assert plain.cycles == traced.cycles
        assert plain.fast_traffic_bytes == traced.fast_traffic_bytes
        assert plain.case_counts == traced.case_counts


class TestWarmupWindow:
    def test_zero_warmup_measures_everything(self):
        config = make_small_config()
        sim_config = make_small_sim_config()
        sim_config = type(sim_config)(
            hierarchy=sim_config.hierarchy, warmup_fraction=0.0
        )
        trace = ZipfWorkload("wl", 4 * config.layout.fast_capacity, seed=2).generate(1500)
        ctrl = BaryonController(config, seed=2)
        trace.apply_compressibility(ctrl.oracle)
        result = SystemSimulator(ctrl, sim_config).run(trace)
        assert result.memory_accesses == ctrl.stats.get("accesses")
        assert sum(result.case_counts.values()) == ctrl.stats.get("accesses")

    def test_empty_trace_yields_empty_window(self):
        config = make_small_config()
        trace = ZipfWorkload("wl", 4 * config.layout.fast_capacity, seed=2).generate(0)
        ctrl = BaryonController(config, seed=2)
        result = SystemSimulator(ctrl, make_small_sim_config()).run(trace)
        assert result.instructions == 0
        assert result.memory_accesses == 0
        assert result.cycles == 0.0

    def test_full_warmup_yields_empty_window(self):
        """If rounding pushes warmup_end up to n, the measured window must
        come out empty — not crash or report garbage deltas."""
        config = make_small_config()
        sim_config = make_small_sim_config()
        trace = ZipfWorkload("wl", 4 * config.layout.fast_capacity, seed=2).generate(300)
        ctrl = BaryonController(config, seed=2)
        trace.apply_compressibility(ctrl.oracle)
        sim = SystemSimulator(ctrl, sim_config)

        # SimulationConfig validates warmup_fraction < 1, so fake the
        # pathological rounding with a duck-typed stand-in.
        class _FullWarmup:
            hierarchy = sim_config.hierarchy
            base_cpi = sim_config.base_cpi
            memory_level_parallelism = sim_config.memory_level_parallelism
            warmup_fraction = 1.0

        sim.config = _FullWarmup()
        result = sim.run(trace)
        assert result.memory_accesses == 0
        assert result.instructions == 0
        assert result.cycles == 0.0
        assert ctrl.stats.get("accesses") > 0  # the trace really ran


class TestCliObservability:
    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "t.jsonl"
        code = main([
            "trace", "YCSB-B", "baryon", "--accesses", "1200",
            "--scale", "512", "--out", str(out),
        ])
        assert code == 0
        events = load_jsonl(str(out))
        assert any(e["type"] == "access" for e in events)
        assert "events" in capsys.readouterr().out

    def test_trace_rejects_unknown_workload(self):
        from repro.__main__ import main

        assert main(["trace", "nope"]) == 2

    def test_report_subcommand_with_metrics(self, capsys):
        from repro.__main__ import main

        code = main([
            "report", "YCSB-B", "baryon", "--accesses", "1200",
            "--scale", "512", "--metrics", "--format", "prometheus",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "access cases (from trace)" in out
        assert "repro_mem_latency_cycles" in out
        assert "# TYPE repro_access_cases_total counter" in out

    def test_report_json_format(self, capsys):
        from repro.__main__ import main

        code = main([
            "report", "YCSB-B", "--accesses", "800", "--scale", "512",
            "--metrics", "--format", "json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert "repro_mem_latency_cycles" in payload

    def test_profile_flag(self, capsys):
        from repro.__main__ import main

        code = main([
            "YCSB-B", "baryon", "--accesses", "800", "--scale", "512",
            "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase" in out and "controller" in out


# ------------------------------------------------- sweep-telemetry satellites
class TestLabelEscaping:
    """Prometheus label values must escape backslash, quote, newline."""

    def test_quote_backslash_newline_escaped(self):
        c = LabeledCounter("n", label_names=("path",))
        c.inc(1, path='C:\\dir\\"quoted"\nline')
        line = c.exposition()[-1]
        assert line == 'n{path="C:\\\\dir\\\\\\"quoted\\"\\nline"} 1'
        # The rendered value must not contain a raw newline or an
        # unescaped quote that would break the exposition line format.
        assert "\n" not in line

    def test_plain_values_untouched(self):
        c = LabeledCounter("n", label_names=("case",))
        c.inc(2, case="commit_hit")
        assert 'n{case="commit_hit"} 2' in c.exposition()

    def test_histogram_and_series_unaffected(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.5)
        assert 'h_bucket{le="1"} 1' in h.exposition()


class TestTimeSeriesNextDue:
    """``next_due``-driven interval sampling must replay per-access
    ``tick`` exactly, including across decimation."""

    def test_next_due_reports_next_window_boundary(self):
        ts = TimeSeries("s", every=10)
        assert ts.next_due() == 10
        for _ in range(9):
            ts.tick(1.0)
        assert ts.next_due() == 10
        ts.tick(1.0)
        assert ts.next_due() == 20

    def test_sample_at_replays_tick_exactly(self):
        ticked = TimeSeries("a", every=7)
        values = [float(i * i % 13) for i in range(1, 101)]
        for i, v in enumerate(values, start=1):
            ticked.tick(v)
        sampled = TimeSeries("b", every=7)
        while sampled.next_due() <= len(values):
            due = sampled.next_due()
            sampled.sample_at(due, values[due - 1])
        sampled.advance_to(len(values))
        assert sampled.points == ticked.points
        assert sampled.ticks == ticked.ticks
        assert sampled.every == ticked.every

    def test_equivalence_across_decimation(self):
        n = 400
        ticked = TimeSeries("a", every=2, capacity=16)
        for i in range(1, n + 1):
            ticked.tick(float(i))
        sampled = TimeSeries("b", every=2, capacity=16)
        # next_due must be re-queried after every sample: decimation
        # widens the window mid-run.
        while sampled.next_due() <= n:
            due = sampled.next_due()
            sampled.sample_at(due, float(due))
        sampled.advance_to(n)
        assert sampled.every == ticked.every
        assert sampled.points == ticked.points

    def test_trailing_partial_window_not_recorded(self):
        ts = TimeSeries("s", every=10)
        ts.sample_at(10, 1.0)
        ts.advance_to(15)
        assert ts.points == [(10, 1.0)]
        assert ts.ticks == 15
        assert ts.next_due() == 20


class TestTracerFlushOnFinalize:
    """The simulator must flush the JSONL sink at run end, so short
    traced runs have their tail events on disk without ``close()``."""

    def test_sink_flushed_without_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w", encoding="utf-8") as sink:
            tracer = EventTracer(capacity=1 << 16, sink=sink)
            run_traced(n=600, tracer=tracer)
            # Sink deliberately NOT closed and tracer.close() not called:
            # _finalize's flush alone must have pushed every line out.
            lines = path.read_text().strip().splitlines()
            assert len(lines) == tracer.sampled
            assert all(json.loads(line)["seq"] for line in lines)

    def test_close_is_idempotent_and_detaches(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w", encoding="utf-8") as sink:
            tracer = EventTracer(sink=sink)
            tracer.emit("access", case="x")
            tracer.close()
            tracer.close()  # second close: no-op, no error
            tracer.emit("access", case="y")  # post-close emits drop the sink
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1

    def test_flush_without_sink_is_noop(self):
        tracer = EventTracer()
        tracer.flush()
        tracer.close()
        assert NULL_TRACER.flush() is None
        assert NULL_TRACER.close() is None
