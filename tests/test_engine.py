"""Compression engine: best-of selection, CF quantization, Fig. 7 mode."""

import dataclasses
import struct

import pytest

from repro.common.config import SUPPORTED_CFS, CompressionConfig, Geometry
from repro.compression.engine import (
    CFS_DESCENDING,
    CompressionEngine,
    quantize_cf,
)


def compressible_bytes(n, word=0x00000003):
    """Highly FPC-compressible filler (small signed words)."""
    return struct.pack(">I", word) * (n // 4)


class TestQuantizeCf:
    @pytest.mark.parametrize(
        "original,compressed,expected",
        [
            (256, 64, 4),
            (256, 65, 2),
            (256, 128, 2),
            (256, 129, 1),
            (256, 256, 1),
            (256, 300, 1),
            (1024, 256, 4),
        ],
    )
    def test_quantization(self, original, compressed, expected):
        assert quantize_cf(original, compressed) == expected


class TestFits:
    def test_single_sub_block_always_fits(self):
        engine = CompressionEngine()
        import os

        assert engine.fits(os.urandom(256))

    def test_zero_range_fits_any_cf(self):
        engine = CompressionEngine()
        assert engine.fits(bytes(1024))

    def test_incompressible_pair_does_not_fit(self):
        import os

        engine = CompressionEngine()
        assert not engine.fits(os.urandom(512))

    def test_compressible_pair_fits(self):
        engine = CompressionEngine()
        assert engine.fits(compressible_bytes(512))

    def test_rejects_misaligned_length(self):
        engine = CompressionEngine()
        with pytest.raises(ValueError):
            engine.fits(bytes(300))

    def test_zero_support_can_be_disabled(self):
        config = CompressionConfig(zero_block_support=False)
        engine = CompressionEngine(config)
        assert not engine.is_zero(bytes(256))
        # Zeros still compress fine through the normal path.
        assert engine.fits(bytes(512))


class TestCachelineAligned:
    def test_cacheline_aligned_is_stricter(self):
        """Data compressible as a whole but not per 64 B chunk: CA mode
        must reject what the unrestricted mode accepts."""
        # Three incompressible-ish chunk groups + one redundant tail can
        # compress globally; per-chunk each 128 B half must fit in 64 B.
        import os

        noise = os.urandom(96)
        data = (noise + bytes(32)) * 4  # 512 B: mixes noise and zeros
        relaxed = CompressionEngine(CompressionConfig(cacheline_aligned=False))
        strict = CompressionEngine(CompressionConfig(cacheline_aligned=True))
        assert strict.fits(data) <= relaxed.fits(data)

    def test_uniform_data_fits_both_modes(self):
        data = compressible_bytes(512)
        for aligned in (True, False):
            engine = CompressionEngine(CompressionConfig(cacheline_aligned=aligned))
            assert engine.fits(data)


class TestAchievableCf:
    def test_zero_block_reaches_cf4(self):
        engine = CompressionEngine()
        assert engine.achievable_cf(bytes(2048), 5) == 4

    def test_random_block_is_cf1(self):
        import os

        engine = CompressionEngine()
        assert engine.achievable_cf(os.urandom(2048), 0) == 1

    def test_compressible_block_reaches_cf4(self):
        engine = CompressionEngine()
        assert engine.achievable_cf(compressible_bytes(2048), 3) == 4

    def test_mixed_block(self):
        import os

        # First quad compressible, second quad random.
        data = compressible_bytes(1024) + os.urandom(1024)
        engine = CompressionEngine()
        assert engine.achievable_cf(data, 0) == 4
        assert engine.achievable_cf(data, 5) == 1


class TestBestAndStats:
    def test_best_picks_smaller(self):
        engine = CompressionEngine()
        result = engine.best(bytes(64))
        assert result.algorithm in ("fpc", "bdi")
        wins = engine.stats.get("wins_fpc") + engine.stats.get("wins_bdi")
        assert wins == 1

    def test_average_cf_bounds(self):
        import os

        engine = CompressionEngine()
        blocks = [bytes(2048), compressible_bytes(2048), os.urandom(2048)]
        avg = engine.average_cf(blocks)
        assert 1.0 <= avg <= 4.0

    def test_average_cf_empty(self):
        assert CompressionEngine().average_cf([]) == 0.0

    def test_decompression_latency_exposed(self):
        config = CompressionConfig(decompression_latency_cycles=5)
        assert CompressionEngine(config).decompression_latency == 5


class TestCfConstant:
    def test_descending_and_complete(self):
        assert CFS_DESCENDING == tuple(sorted(SUPPORTED_CFS, reverse=True))
        assert CFS_DESCENDING[0] == max(SUPPORTED_CFS)


class TestMemo:
    def test_hit_and_miss_counters(self):
        engine = CompressionEngine()
        data = compressible_bytes(256)
        first = engine.best(data)
        second = engine.best(data)
        assert first == second
        assert engine.stats.get("memo_misses") == 1
        assert engine.stats.get("memo_hits") == 1
        assert engine.memo_hit_rate == pytest.approx(0.5)

    def test_wins_counted_on_hits_too(self):
        engine = CompressionEngine()
        data = compressible_bytes(256)
        engine.best(data)
        engine.best(data)
        wins = engine.stats.get("wins_fpc") + engine.stats.get("wins_bdi")
        assert wins == 2  # per-probe semantics survive memoization

    def test_distinct_content_misses(self):
        import os

        engine = CompressionEngine()
        engine.best(os.urandom(256))
        engine.best(os.urandom(256))
        assert engine.stats.get("memo_hits") == 0
        assert engine.stats.get("memo_misses") == 2

    def test_lru_eviction(self):
        engine = CompressionEngine(memo_capacity=2)
        a, b, c = bytes([1]) * 256, bytes([2]) * 256, bytes([3]) * 256
        engine.best(a)
        engine.best(b)
        engine.best(c)  # evicts a (least recently used)
        assert engine.stats.get("memo_evictions") == 1
        engine.best(a)  # re-evaluated, not served stale
        assert engine.stats.get("memo_hits") == 0
        assert engine.stats.get("memo_misses") == 4

    def test_lru_order_refreshed_on_hit(self):
        engine = CompressionEngine(memo_capacity=2)
        a, b, c = bytes([1]) * 256, bytes([2]) * 256, bytes([3]) * 256
        engine.best(a)
        engine.best(b)
        engine.best(a)  # refresh a; b becomes LRU
        engine.best(c)  # evicts b
        engine.best(a)
        assert engine.stats.get("memo_hits") == 2

    def test_memo_disabled(self):
        engine = CompressionEngine(memo_capacity=0)
        data = compressible_bytes(256)
        engine.best(data)
        engine.best(data)
        assert "memo_hits" not in engine.stats
        assert "memo_misses" not in engine.stats

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            CompressionEngine(memo_capacity=-1)

    def test_clear_memo(self):
        engine = CompressionEngine()
        data = compressible_bytes(256)
        engine.best(data)
        engine.clear_memo()
        engine.best(data)
        assert engine.stats.get("memo_misses") == 2

    def test_memoized_fits_matches_cold_engine(self):
        """Same verdicts with and without the memo, probed repeatedly
        (also exercises the failure-ordered chunk probing)."""
        import os

        rng_blocks = [
            bytes(512),
            compressible_bytes(512),
            os.urandom(512),
            compressible_bytes(256) + os.urandom(256),
            os.urandom(256) + compressible_bytes(256),
        ]
        memoized = CompressionEngine()
        cold = CompressionEngine(memo_capacity=0)
        for _ in range(3):  # repeats warm the memo and the fail history
            for data in rng_blocks:
                assert memoized.fits(data) == cold.fits(data)
                assert memoized.is_zero(data) == cold.is_zero(data)

    def test_memoized_achievable_cf_matches_cold_engine(self):
        import os

        data = compressible_bytes(1024) + os.urandom(1024)
        memoized = CompressionEngine()
        cold = CompressionEngine(memo_capacity=0)
        for index in range(8):
            assert memoized.achievable_cf(data, index) == cold.achievable_cf(
                data, index
            )
