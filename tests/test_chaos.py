"""Orchestration-layer chaos harness (repro.resilience.chaos) and the
hardened matrix-runner paths it exercises.

The contract under test mirrors the device-fault layer's: every injected
orchestration failure — killed or hung worker, dropped heartbeat, torn
or ENOSPC'd checkpoint, operator interrupt — is either *recovered* (the
merged sweep outcome stays bit-identical to a chaos-free run) or
surfaced as a counted, explicit degradation (a failed or quarantined
cell, a resumable interrupted checkpoint). Never a silent wrong result.
"""

from __future__ import annotations

import errno
import os

import pytest

from repro.analysis.experiments import run_matrix
from repro.common.errors import (
    CheckpointCorruptError,
    ConfigurationError,
    PoisonCellError,
)
from repro.common.fsio import durable_replace
from repro.obs import audit_manifest, load_manifest
from repro.parallel import (
    SweepTelemetry,
    clear_trace_cache,
    fork_available,
    plan_cells,
    run_plan,
)
from repro.parallel.runner import _Inflight, _RetryBudget
from repro.resilience import (
    CHAOS_SPEC_KEYS,
    ChaosInjector,
    ChaosPlan,
    WorkerChaos,
    load_checkpoint,
    parse_chaos_spec,
    plan_fingerprint,
    salvage_checkpoint,
    write_checkpoint,
)
from repro.resilience.chaos import (
    chaos_randint,
    chaos_uniform,
    write_effect_mutator,
)
from repro.resilience.recovery import requeue_backoff_s

from tests.conftest import make_small_config, make_small_sim_config

N_ACCESSES = 800
WORKLOADS = ["YCSB-B"]
DESIGNS = ["simple", "baryon"]


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def small_configs():
    return make_small_config(), make_small_sim_config()


def make_plan():
    return plan_cells(WORKLOADS, DESIGNS, seed=3)


# ------------------------------------------------------------ keyed draws
class TestChaosDraws:
    def test_uniform_is_pure_and_in_range(self):
        for coords in [(), (0,), (3, 1), (3, 1, 7)]:
            a = chaos_uniform(7, "worker.kill", *coords)
            b = chaos_uniform(7, "worker.kill", *coords)
            assert a == b
            assert 0.0 <= a < 1.0

    def test_uniform_depends_on_every_key_part(self):
        base = chaos_uniform(7, "worker.kill", 3, 1)
        assert chaos_uniform(8, "worker.kill", 3, 1) != base
        assert chaos_uniform(7, "worker.hang", 3, 1) != base
        assert chaos_uniform(7, "worker.kill", 4, 1) != base
        assert chaos_uniform(7, "worker.kill", 3, 2) != base

    def test_randint_bounds(self):
        for coord in range(64):
            value = chaos_randint(5, "worker.kill_at", 3, coord)
            assert 0 <= value < 3


# ------------------------------------------------------------- spec parse
class TestParseChaosSpec:
    def test_parses_every_short_key(self):
        spec = ",".join(f"{key}=0.25" for key in CHAOS_SPEC_KEYS)
        parsed = parse_chaos_spec(spec)
        assert parsed == {field: 0.25 for field in CHAOS_SPEC_KEYS.values()}
        # Every parsed name must be a real ChaosPlan field.
        ChaosPlan(**parsed)

    def test_kill_and_torn_map_to_plan_fields(self):
        assert parse_chaos_spec("kill=0.2, torn=0.3") == {
            "p_kill_worker": 0.2,
            "p_torn_checkpoint": 0.3,
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos kind"):
            parse_chaos_spec("kill=0.2,frobnicate=1.0")

    def test_missing_value_rejected(self):
        with pytest.raises(ConfigurationError, match="needs key=value"):
            parse_chaos_spec("kill")

    def test_bad_float_rejected(self):
        with pytest.raises(ConfigurationError, match="bad value"):
            parse_chaos_spec("kill=lots")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="empty chaos spec"):
            parse_chaos_spec(" , ")


class TestChaosPlan:
    def test_worker_chaos_detection(self):
        assert ChaosPlan(p_kill_worker=0.1).wants_worker_chaos
        assert ChaosPlan(p_hang_worker=0.1).wants_worker_chaos
        assert ChaosPlan(p_drop_heartbeat=0.1).wants_worker_chaos
        assert ChaosPlan(p_stall_heartbeats=0.1).wants_worker_chaos
        assert ChaosPlan(poison_cells=(2,)).wants_worker_chaos
        assert not ChaosPlan(p_torn_checkpoint=0.5).wants_worker_chaos
        assert not ChaosPlan(p_enospc=0.5).wants_worker_chaos

    def test_active_covers_parent_side_chaos(self):
        assert not ChaosPlan().active
        assert ChaosPlan(p_torn_checkpoint=0.1).active
        assert ChaosPlan(p_flip_checkpoint=0.1).active
        assert ChaosPlan(p_enospc=0.1).active
        assert ChaosPlan(p_delay_drain=0.1).active
        assert ChaosPlan(interrupt_after_cells=3).active

    def test_describe_lists_only_armed_kinds(self):
        plan = ChaosPlan(
            p_kill_worker=0.2, poison_cells=(1, 2), interrupt_after_cells=4
        )
        described = plan.describe()
        assert described["p_kill_worker"] == 0.2
        assert described["poison_cells"] == 2
        assert described["interrupt_after_cells"] == 4
        assert "p_hang_worker" not in described


# ---------------------------------------------------------- worker chaos
class TestWorkerChaos:
    def test_poison_cell_killed_on_every_attempt(self):
        plan = ChaosPlan(seed=11, poison_cells=(4,))
        for attempt in range(1, 6):
            chaos = WorkerChaos(plan, 4, attempt)
            assert 1 <= chaos.kill_at <= WorkerChaos._EARLY_BEATS
        # Non-poison cells of the same plan are untouched.
        assert WorkerChaos(plan, 3, 1).kill_at == -1

    def test_kill_excludes_hang(self):
        plan = ChaosPlan(seed=11, p_kill_worker=1.0, p_hang_worker=1.0)
        chaos = WorkerChaos(plan, 0, 1)
        assert chaos.kill_at >= 1
        assert chaos.hang_at == -1

    def test_schedule_is_deterministic(self):
        plan = ChaosPlan(seed=9, p_kill_worker=0.5, p_hang_worker=0.5)
        for cell in range(8):
            first = WorkerChaos(plan, cell, 2)
            again = WorkerChaos(plan, cell, 2)
            assert (first.kill_at, first.hang_at) == (again.kill_at, again.hang_at)

    def test_clean_plan_forwards_beats(self):
        chaos = WorkerChaos(ChaosPlan(seed=1), 0, 1)
        seen = []
        for beat in range(5):
            chaos.on_beat(seen.append, {"done": beat})
        assert [event["done"] for event in seen] == list(range(5))

    def test_full_drop_swallows_every_beat(self):
        chaos = WorkerChaos(ChaosPlan(seed=1, p_drop_heartbeat=1.0), 0, 1)
        seen = []
        for beat in range(5):
            chaos.on_beat(seen.append, {"done": beat})
        assert seen == []

    def test_stall_drops_a_contiguous_window_then_resumes(self):
        plan = ChaosPlan(seed=2, p_stall_heartbeats=1.0, stall_beats=2)
        chaos = WorkerChaos(plan, 0, 1)
        start = chaos.stall_from
        assert 1 <= start <= WorkerChaos._EARLY_BEATS
        seen = []
        for beat in range(start + 4):
            chaos.on_beat(seen.append, {"done": beat})
        delivered = [event["done"] for event in seen]
        expected = [b for b in range(start + 4) if not start <= b < start + 2]
        assert delivered == expected


# --------------------------------------------------------- write effects
class TestWriteEffects:
    def test_none_effect_means_faithful_write(self):
        assert write_effect_mutator(None) is None

    def test_unknown_effect_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown write effect"):
            write_effect_mutator("gremlins")

    def test_torn_truncates_published_file(self, tmp_path):
        target = str(tmp_path / "data.bin")
        payload = b"x" * 30
        durable_replace(target, payload, mutate=write_effect_mutator("torn"))
        with open(target, "rb") as handle:
            assert handle.read() == payload[: (30 * 2) // 3]

    def test_flip_corrupts_one_bit_in_place(self, tmp_path):
        target = str(tmp_path / "data.bin")
        payload = bytes(range(32))
        durable_replace(target, payload, mutate=write_effect_mutator("flip"))
        with open(target, "rb") as handle:
            written = handle.read()
        assert len(written) == len(payload)
        assert written[16] == payload[16] ^ 0x01
        assert written[:16] == payload[:16] and written[17:] == payload[17:]

    def test_enospc_raises_and_leaves_target_intact(self, tmp_path):
        target = str(tmp_path / "data.bin")
        with open(target, "wb") as handle:
            handle.write(b"original")
        with pytest.raises(OSError) as excinfo:
            durable_replace(
                target, b"replacement", mutate=write_effect_mutator("enospc")
            )
        assert excinfo.value.errno == errno.ENOSPC
        with open(target, "rb") as handle:
            assert handle.read() == b"original"
        assert os.listdir(tmp_path) == ["data.bin"]  # no temp file left


# --------------------------------------------------------- parent chaos
class TestChaosInjector:
    def test_torn_applies_to_checkpoint_site_only(self):
        injector = ChaosInjector(ChaosPlan(p_torn_checkpoint=1.0))
        assert injector.write_effect("checkpoint") == "torn"
        assert injector.write_effect("manifest") is None
        assert injector.stats.as_dict() == {"injected_checkpoint_torn": 1}

    def test_enospc_hits_any_site_and_wins_precedence(self):
        injector = ChaosInjector(
            ChaosPlan(p_enospc=1.0, p_torn_checkpoint=1.0)
        )
        assert injector.write_effect("manifest") == "enospc"
        assert injector.write_effect("checkpoint") == "enospc"
        stats = injector.stats.as_dict()
        assert stats["injected_manifest_enospc"] == 1
        assert stats["injected_checkpoint_enospc"] == 1
        assert "injected_checkpoint_torn" not in stats

    def test_flip_drawn_after_torn_declines(self):
        injector = ChaosInjector(ChaosPlan(p_flip_checkpoint=1.0))
        assert injector.write_effect("checkpoint") == "flip"
        assert injector.stats.as_dict() == {"injected_checkpoint_flip": 1}

    def test_drain_delay(self):
        injector = ChaosInjector(ChaosPlan(p_delay_drain=1.0, drain_delay_s=0.25))
        assert injector.drain_delay() == 0.25
        assert injector.stats.as_dict()["injected_drain_delay"] == 1
        assert ChaosInjector(ChaosPlan()).drain_delay() == 0.0

    def test_interrupt_fires_exactly_once_at_threshold(self):
        injector = ChaosInjector(ChaosPlan(interrupt_after_cells=3))
        assert not injector.should_interrupt(2)
        assert injector.should_interrupt(3)
        assert not injector.should_interrupt(4)
        assert injector.stats.as_dict()["injected_interrupt"] == 1

    def test_injected_total_sums_everything(self):
        injector = ChaosInjector(
            ChaosPlan(p_torn_checkpoint=1.0, interrupt_after_cells=1)
        )
        injector.write_effect("checkpoint")
        injector.should_interrupt(1)
        assert injector.injected_total() == 2

    def test_draws_are_deterministic_across_injectors(self):
        plan = ChaosPlan(seed=42, p_torn_checkpoint=0.5)
        first = ChaosInjector(plan)
        second = ChaosInjector(plan)
        seq_a = [first.write_effect("checkpoint") for _ in range(10)]
        seq_b = [second.write_effect("checkpoint") for _ in range(10)]
        assert seq_a == seq_b
        assert "torn" in seq_a  # p=0.5 over 10 draws fires for seed 42


# -------------------------------------------------------------- backoff
class TestRequeueBackoff:
    def test_disabled_without_base_or_attempt(self):
        assert requeue_backoff_s(0.0, 3) == 0.0
        assert requeue_backoff_s(-1.0, 3) == 0.0
        assert requeue_backoff_s(0.5, 0) == 0.0

    def test_deterministic(self):
        assert requeue_backoff_s(0.1, 2, 5, 7) == requeue_backoff_s(0.1, 2, 5, 7)

    def test_exponential_with_bounded_jitter(self):
        for attempt in range(1, 5):
            delay = requeue_backoff_s(0.1, attempt, cell_index=3, seed=9)
            floor = 0.1 * 2.0 ** (attempt - 1)
            assert floor <= delay < floor * 1.5

    def test_jitter_desynchronizes_cells(self):
        delays = {requeue_backoff_s(0.1, 1, cell, 9) for cell in range(16)}
        assert len(delays) > 1


# ------------------------------------------------- runner bookkeeping
class TestRetryBudget:
    def test_unlimited_when_none(self):
        budget = _RetryBudget(None)
        assert all(budget.take() for _ in range(100))

    def test_exhausts_at_limit(self):
        budget = _RetryBudget(2)
        assert budget.take() and budget.take()
        assert not budget.take()
        assert budget.used == 2


class TestInflightDeadlines:
    def test_dead_vs_hung_are_distinct(self):
        entry = _Inflight(attempt=1, handle=None, now=0.0)
        # No beat at all: dead fires, hung never does (queue wait).
        assert entry.dead(10.0, 5.0)
        assert not entry.hung(10.0, 1.0)
        # Beating with advancing progress: neither fires.
        entry.note_beat({"attempt": 1, "done": 100, "total": 800}, 10.5)
        assert not entry.dead(11.0, 5.0)
        assert not entry.hung(11.0, 1.0)
        # Beating with frozen progress: hung fires, dead does not.
        entry.note_beat({"attempt": 1, "done": 100, "total": 800}, 12.0)
        assert entry.hung(12.5 + 1.0, 1.0) is False  # beats too old by then
        entry.note_beat({"attempt": 1, "done": 100, "total": 800}, 13.0)
        assert not entry.dead(13.5, 5.0)
        assert entry.hung(13.5, 1.0)

    def test_hung_requires_progress_timeout_armed(self):
        entry = _Inflight(attempt=1, handle=None, now=0.0)
        entry.note_beat({"attempt": 1, "done": 50, "total": 800}, 1.0)
        assert not entry.hung(100.0, None)


# --------------------------------------------- torn checkpoints, salvage
def _fake_payload(index: int, value: int) -> dict:
    return {
        "index": index,
        "result": {"value": value},
        "controller": {"hits": value},
    }


class TestChaoticCheckpoints:
    def test_torn_write_detected_then_salvaged(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        payloads = {i: _fake_payload(i, 100 + i) for i in range(6)}
        write_checkpoint(path, "fp", payloads, effect="torn")
        with pytest.raises(CheckpointCorruptError) as excinfo:
            load_checkpoint(path, "fp")
        assert excinfo.value.salvageable
        recovered, report = salvage_checkpoint(path, "fp")
        assert 0 < report["recovered"] < len(payloads)
        for index, payload in recovered.items():
            assert payload == payloads[index]
        assert report["dropped"] >= 1

    def test_flipped_write_detected_then_salvaged(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        payloads = {i: _fake_payload(i, 100 + i) for i in range(6)}
        write_checkpoint(path, "fp", payloads, effect="flip")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, "fp")
        recovered, report = salvage_checkpoint(path, "fp")
        assert report["recovered"] >= len(payloads) - 2
        assert report["dropped"] >= 1
        for index, payload in recovered.items():
            assert payload == payloads[index]

    def test_salvage_still_verifies_the_header(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        write_checkpoint(path, "fp", {0: _fake_payload(0, 1)}, effect="torn")
        with pytest.raises(ConfigurationError, match="different sweep"):
            salvage_checkpoint(path, "other-fingerprint")

    def test_manifest_digests_drop_disagreeing_cells(self, tmp_path):
        from repro.obs.manifest import _result_digest

        path = str(tmp_path / "sweep.ckpt")
        payloads = {i: _fake_payload(i, 100 + i) for i in range(3)}
        write_checkpoint(path, "fp", payloads, effect="flip")
        expected = {
            i: _result_digest(payloads[i]["result"]) for i in payloads
        }
        survivors, _ = salvage_checkpoint(path, "fp")
        assert survivors  # at least one cell outlives the flip
        victim = sorted(survivors)[0]
        expected[victim] = "0" * 64
        recovered, report = salvage_checkpoint(path, "fp", expected)
        assert victim not in recovered
        assert report["manifest_mismatch"] == 1
        assert any("manifest result digest" in note for note in report["damage"])


# ------------------------------------------------ run_plan chaos wiring
class TestRunPlanChaosValidation:
    def test_worker_chaos_needs_a_pool(self):
        config, sim_config = small_configs()
        with pytest.raises(ConfigurationError, match="jobs >= 2"):
            run_plan(
                make_plan(), config, sim_config, n_accesses=N_ACCESSES,
                jobs=1, chaos=ChaosPlan(p_kill_worker=0.5),
            )

    def test_worker_chaos_needs_heartbeats(self):
        if not fork_available():
            pytest.skip("platform lacks fork")
        config, sim_config = small_configs()
        chaos = ChaosPlan(p_kill_worker=0.5)
        with pytest.raises(ConfigurationError, match="heartbeat"):
            run_plan(
                make_plan(), config, sim_config, n_accesses=N_ACCESSES,
                jobs=2, chaos=chaos,
            )
        with pytest.raises(ConfigurationError, match="heartbeat"):
            run_plan(
                make_plan(), config, sim_config, n_accesses=N_ACCESSES,
                jobs=2, chaos=chaos,
                telemetry=SweepTelemetry(heartbeat_every=0),
            )


class TestSerialChaosBitIdentity:
    def test_torn_checkpoints_never_taint_the_outcome(self, tmp_path):
        config, sim_config = small_configs()
        plan = make_plan()
        reference = run_plan(plan, config, sim_config, n_accesses=N_ACCESSES)
        assert not reference.failed

        ckpt = str(tmp_path / "sweep.ckpt")
        chaos = ChaosPlan(seed=7, p_torn_checkpoint=1.0)
        chaotic = run_plan(
            plan, config, sim_config, n_accesses=N_ACCESSES,
            checkpoint=ckpt, chaos=chaos,
        )
        assert not chaotic.failed and not chaotic.interrupted
        assert chaotic.counters.as_dict() == reference.counters.as_dict()
        assert chaotic.device_counters.as_dict() == (
            reference.device_counters.as_dict()
        )
        assert chaotic.orchestration.as_dict()["injected_checkpoint_torn"] >= 1
        assert chaotic.audit is not None and chaotic.audit["ok"]

        # Every checkpoint write was torn, so the file on disk is damaged…
        fingerprint = plan_fingerprint(plan, N_ACCESSES, config, sim_config)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(ckpt, fingerprint)

        # …and a chaos-free resume salvages what it can, reruns the rest,
        # and still lands on the bit-identical merged outcome.
        resumed = run_plan(
            plan, config, sim_config, n_accesses=N_ACCESSES,
            checkpoint=ckpt, resume=ckpt,
        )
        assert not resumed.failed
        assert resumed.salvaged + resumed.retries >= 0  # smoke: fields exist
        assert resumed.counters.as_dict() == reference.counters.as_dict()
        salvage_counts = resumed.orchestration.as_dict()
        assert "checkpoint_salvaged_cells" in salvage_counts

    def test_enospc_checkpoint_writes_are_counted_not_fatal(self, tmp_path):
        config, sim_config = small_configs()
        plan = make_plan()
        reference = run_plan(plan, config, sim_config, n_accesses=N_ACCESSES)
        ckpt = str(tmp_path / "sweep.ckpt")
        chaotic = run_plan(
            plan, config, sim_config, n_accesses=N_ACCESSES,
            checkpoint=ckpt, chaos=ChaosPlan(seed=7, p_enospc=1.0),
        )
        assert not chaotic.failed
        assert chaotic.counters.as_dict() == reference.counters.as_dict()
        orchestration = chaotic.orchestration.as_dict()
        assert orchestration["checkpoint_write_errors"] >= 1
        assert orchestration["injected_checkpoint_enospc"] >= 1
        assert not os.path.exists(ckpt)  # nothing ever reached the disk


# ------------------------------------------------- pool chaos (fork only)
@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
class TestPoolChaos:
    TIMEOUT_S = 3.0

    def _pool_kwargs(self):
        return dict(
            n_accesses=N_ACCESSES, jobs=2, cell_timeout_s=self.TIMEOUT_S,
            telemetry=SweepTelemetry(heartbeat_every=100),
            backoff_base_s=0.01,
        )

    def test_poison_cell_is_quarantined_not_fatal(self):
        config, sim_config = small_configs()
        plan = make_plan()
        reference = run_plan(plan, config, sim_config, n_accesses=N_ACCESSES)
        chaos = ChaosPlan(seed=11, poison_cells=(0,))
        outcome = run_plan(
            plan, config, sim_config,
            chaos=chaos, max_attempts=5, quarantine_after=2,
            **self._pool_kwargs(),
        )
        assert not outcome.failed
        assert list(outcome.quarantined) == [plan[0].key]
        record = outcome.quarantined[plan[0].key]
        assert "consecutive worker" in record["message"]
        assert record["attempts"] == 2
        assert len(outcome.results) == len(plan) - 1
        # The healthy cells still fold bit-identically to their serial run.
        for cell in plan[1:]:
            assert (
                outcome.results[cell.key].to_dict()
                == reference.results[cell.key].to_dict()
            )
        orchestration = outcome.orchestration.as_dict()
        assert orchestration["quarantined"] == 1

    def test_poison_cell_exhausts_attempts_without_breaker(self):
        config, sim_config = small_configs()
        plan = make_plan()
        chaos = ChaosPlan(seed=11, poison_cells=(0,))
        outcome = run_plan(
            plan, config, sim_config,
            chaos=chaos, max_attempts=2,
            **self._pool_kwargs(),
        )
        assert list(outcome.failed) == [plan[0].key]
        assert "heartbeat" in outcome.failed[plan[0].key]["message"]
        assert outcome.retries >= 1
        assert outcome.orchestration.as_dict()["requeue_timeout"] >= 1

    def test_retry_budget_caps_requeues(self):
        config, sim_config = small_configs()
        plan = make_plan()
        chaos = ChaosPlan(seed=11, poison_cells=(0,))
        outcome = run_plan(
            plan, config, sim_config,
            chaos=chaos, max_attempts=10, retry_budget=1,
            **self._pool_kwargs(),
        )
        assert list(outcome.failed) == [plan[0].key]
        assert outcome.retries <= 1
        assert outcome.orchestration.as_dict()["retry_budget_exhausted"] >= 1

    def test_hung_worker_detected_distinctly_from_dead(self):
        config, sim_config = small_configs()
        plan = make_plan()
        # Every attempt freezes its progress for 1s while still beating;
        # progress_timeout_s=0.4 must flag that as *hung* (not dead) and
        # exhaust the per-cell attempts.
        chaos = ChaosPlan(seed=5, p_hang_worker=1.0, hang_s=1.0)
        outcome = run_plan(
            plan, config, sim_config,
            chaos=chaos, max_attempts=2, progress_timeout_s=0.4,
            **self._pool_kwargs(),
        )
        assert set(outcome.failed) == {cell.key for cell in plan}
        for error in outcome.failed.values():
            assert "stalled" in error["message"]
        assert outcome.orchestration.as_dict()["requeue_hung"] >= 1

    def test_injected_interrupt_leaves_a_resumable_checkpoint(self, tmp_path):
        config, sim_config = small_configs()
        # Six cells against a dispatch window of four (jobs=2): the
        # injected interrupt must catch some cells still queued, since
        # inflight cells are allowed to drain to completion.
        plan = plan_cells(WORKLOADS, DESIGNS, seeds=[1, 2, 3])
        reference = run_plan(plan, config, sim_config, n_accesses=N_ACCESSES)
        ckpt = str(tmp_path / "sweep.ckpt")
        first = run_plan(
            plan, config, sim_config,
            chaos=ChaosPlan(seed=7, interrupt_after_cells=1),
            checkpoint=ckpt, interrupt_grace_s=10.0,
            **self._pool_kwargs(),
        )
        assert first.interrupted
        assert not first.failed
        assert len(first.results) < len(plan)
        assert first.orchestration.as_dict()["injected_interrupt"] == 1

        final = run_plan(
            plan, config, sim_config,
            checkpoint=ckpt, resume=ckpt,
            **self._pool_kwargs(),
        )
        assert not final.interrupted and not final.failed
        assert final.resumed >= 1
        assert len(final.results) == len(plan)
        assert final.counters.as_dict() == reference.counters.as_dict()
        assert final.serve.hits == reference.serve.hits
        assert final.serve.total == reference.serve.total
        assert final.audit is not None and final.audit["ok"]


# ------------------------------------------------ matrix entry points
class TestMatrixChaosSurface:
    def test_run_matrix_raises_poison_cell_error(self, monkeypatch):
        import repro.parallel as parallel_pkg
        from repro.parallel.runner import MatrixOutcome

        outcome = MatrixOutcome()
        outcome.quarantined[("YCSB-B", "simple")] = {
            "message": "cell 0 took down 2 consecutive worker(s)",
            "attempts": 2,
            "reasons": ["timeout", "timeout"],
            "partial": {"done": 100, "total": 800},
        }
        monkeypatch.setattr(parallel_pkg, "run_plan", lambda *a, **k: outcome)
        config, sim_config = small_configs()
        with pytest.raises(PoisonCellError) as excinfo:
            run_matrix(
                WORKLOADS, ["simple"], config, sim_config, n_accesses=16
            )
        err = excinfo.value
        assert err.cell == ("YCSB-B", "simple")
        assert err.attempts == 2
        assert err.reasons == ("timeout", "timeout")
        assert err.partial == {"done": 100, "total": 800}


class TestManifestAudit:
    def test_audit_catches_tampering(self, tmp_path):
        config, sim_config = small_configs()
        plan = make_plan()
        manifest_path = str(tmp_path / "run.manifest.json")
        outcome = run_plan(
            plan, config, sim_config, n_accesses=N_ACCESSES,
            manifest=manifest_path,
        )
        assert outcome.audit is not None and outcome.audit["ok"]

        manifest = load_manifest(manifest_path)
        manifest["counter_digest"] = "0" * 64
        first_key = sorted(manifest["results"])[0]
        del manifest["results"][first_key]
        audit = audit_manifest(manifest, outcome, plan)
        assert not audit["ok"]
        assert any("counter_digest" in note for note in audit["mismatches"])
        assert any(
            "missing from manifest" in note for note in audit["mismatches"]
        )


# --------------------------------------------------------- CLI exit codes
class TestMatrixExitCodes:
    def _outcome(self, **overrides):
        import types

        base = dict(
            failed={}, quarantined={}, interrupted=False, audit={"ok": True}
        )
        base.update(overrides)
        return types.SimpleNamespace(**base)

    def test_precedence(self):
        from repro.__main__ import (
            EXIT_MATRIX_FAILED,
            EXIT_MATRIX_INTERRUPTED,
            EXIT_MATRIX_OK,
            EXIT_MATRIX_QUARANTINED,
            _matrix_exit_code,
        )

        assert _matrix_exit_code(self._outcome()) == EXIT_MATRIX_OK
        assert _matrix_exit_code(
            self._outcome(quarantined={("a",): {}})
        ) == EXIT_MATRIX_QUARANTINED
        assert _matrix_exit_code(
            self._outcome(interrupted=True, quarantined={("a",): {}})
        ) == EXIT_MATRIX_INTERRUPTED
        assert _matrix_exit_code(
            self._outcome(failed={("a",): {}}, interrupted=True)
        ) == EXIT_MATRIX_FAILED
        assert _matrix_exit_code(
            self._outcome(audit={"ok": False})
        ) == EXIT_MATRIX_FAILED
        assert _matrix_exit_code(self._outcome(audit=None)) == EXIT_MATRIX_OK
