"""Real-content store and the content-backed compressibility oracle."""

import pytest

from repro.compression.engine import CompressionEngine
from repro.compression.synthetic import PROFILE_LIBRARY, SyntheticCompressibility
from repro.workloads.datagen import ContentBackedCompressibility, ContentStore


class TestContentStore:
    def test_deterministic_per_block(self):
        a = ContentStore(pattern="deltas", seed=5)
        b = ContentStore(pattern="deltas", seed=5)
        assert a.block(12) == b.block(12)
        assert a.block(12) != a.block(13)

    def test_block_size(self):
        store = ContentStore()
        assert len(store.block(0)) == 2048

    @pytest.mark.parametrize("pattern", ContentStore.PATTERNS)
    def test_all_patterns_materialize(self, pattern):
        store = ContentStore(pattern=pattern, seed=1)
        data = store.block(3)
        assert len(data) == 2048
        if pattern == "zeros":
            assert not any(data)

    def test_pattern_compressibility_ordering(self):
        engine = CompressionEngine()
        sizes = {}
        for pattern in ("zeros", "small_ints", "deltas", "random"):
            store = ContentStore(pattern=pattern, seed=2)
            sizes[pattern] = engine.best(bytes(store.block(0)[:256])).compressed_bytes
        assert sizes["zeros"] <= sizes["small_ints"] <= sizes["random"]
        assert sizes["deltas"] < sizes["random"]

    def test_region_override(self):
        store = ContentStore(pattern="random", seed=1)
        store.set_region_pattern(10, 20, "zeros")
        assert not any(store.block(15))
        assert any(store.block(5))

    def test_write_mutates(self):
        store = ContentStore(pattern="zeros")
        store.write(0, 100, b"\xff" * 8)
        assert store.block(0)[100] == 0xFF

    def test_scramble_line(self):
        store = ContentStore(pattern="zeros")
        store.scramble_line(0, 0)
        assert any(store.block(0)[:64])

    def test_invalid_pattern(self):
        with pytest.raises(ValueError):
            ContentStore(pattern="fractal")


class TestContentBackedOracle:
    def test_zero_blocks_detected(self):
        oracle = ContentBackedCompressibility(ContentStore(pattern="zeros"))
        assert oracle.is_zero(1, 0, 8)
        assert oracle.max_cf(1, 0) == 4

    def test_random_blocks_incompressible(self):
        oracle = ContentBackedCompressibility(ContentStore(pattern="random"))
        assert oracle.max_cf(2, 0) == 1
        assert not oracle.fits(2, 0, 2)

    def test_cf1_always_fits(self):
        oracle = ContentBackedCompressibility(ContentStore(pattern="random"))
        assert oracle.fits(2, 3, 1)

    def test_writes_can_degrade_compressibility(self):
        store = ContentStore(pattern="zeros")
        oracle = ContentBackedCompressibility(store, write_noise=1.0, seed=3)
        assert oracle.fits(0, 0, 4)
        for sub in range(4):
            oracle.note_write(0, sub)
        assert not oracle.fits(0, 0, 4)

    def test_drives_controller(self):
        """The controller runs unchanged on real-content compressibility."""
        from repro.core import BaryonController
        from tests.conftest import make_small_config

        store = ContentStore(pattern="small_ints", seed=2)
        oracle = ContentBackedCompressibility(store, write_noise=0.2, seed=2)
        ctrl = BaryonController(make_small_config(fast_mb=2, stage_kb=128), seed=1)
        ctrl.oracle = oracle
        import random

        rng = random.Random(4)
        for _ in range(600):
            addr = (rng.randrange(8 << 20) // 64) * 64
            ctrl.access(addr, rng.random() < 0.3)
        assert ctrl.stats.get("accesses") == 600
        assert ctrl.serve_rate() > 0.0


class TestCalibration:
    def test_synthetic_profiles_bracket_real_patterns(self):
        """The synthetic profiles must be consistent with what real
        FPC/BDI achieve on the matching content patterns."""
        engine = CompressionEngine()

        def real_fit_rate(pattern, n_sub):
            store = ContentStore(pattern=pattern, seed=7)
            hits = 0
            for block in range(40):
                data = bytes(store.block(block)[: 256 * n_sub])
                hits += engine.fits(data)
            return hits / 40

        # Random data: essentially never compresses 2:1.
        assert real_fit_rate("random", 2) <= PROFILE_LIBRARY["low"].p_cf2
        # Small integers: compress at least as well as the 'high' profile.
        assert real_fit_rate("small_ints", 2) >= PROFILE_LIBRARY["high"].p_cf2 * 0.9

    def test_expected_cf_matches_empirical_sampling(self):
        """Closed-form expected_cf equals Monte-Carlo sampling of max_cf."""
        oracle = SyntheticCompressibility(seed=17)
        profile = PROFILE_LIBRARY["medium"]
        oracle.set_default_profile(profile)
        samples = [oracle.max_cf(b, 0, cacheline_aligned=True) for b in range(4000)]
        empirical = sum(samples) / len(samples)
        assert empirical == pytest.approx(profile.expected_cf(True), rel=0.08)
