"""Synthetic compressibility oracle: determinism, monotonicity, profiles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.compression.synthetic import (
    PROFILE_LIBRARY,
    CompressibilityProfile,
    NullCompressibility,
    SyntheticCompressibility,
)


class TestProfile:
    def test_validation_bounds(self):
        with pytest.raises(ConfigurationError):
            CompressibilityProfile(p_cf4=1.5)
        with pytest.raises(ConfigurationError):
            CompressibilityProfile(p_cf4=0.8, p_cf2=0.5)

    def test_effective_p_monotone_in_cf(self):
        profile = PROFILE_LIBRARY["medium"]
        assert profile.effective_p(4, False) <= profile.effective_p(2, False)
        assert profile.effective_p(1, False) == 1.0

    def test_cacheline_alignment_penalty(self):
        profile = PROFILE_LIBRARY["medium"]
        assert profile.effective_p(2, True) < profile.effective_p(2, False)

    def test_expected_cf_ordering_across_profiles(self):
        cfs = {name: p.expected_cf() for name, p in PROFILE_LIBRARY.items()}
        assert cfs["incompressible"] < cfs["low"] < cfs["medium"] < cfs["high"]
        assert cfs["incompressible"] < 1.15
        assert 1.5 < cfs["medium"] < 2.5

    def test_expected_cf_in_range(self):
        for profile in PROFILE_LIBRARY.values():
            assert 1.0 <= profile.expected_cf() <= 4.0


class TestOracle:
    def test_deterministic(self):
        a = SyntheticCompressibility(seed=7)
        b = SyntheticCompressibility(seed=7)
        for block in range(50):
            assert a.max_cf(block, 3) == b.max_cf(block, 3)
            assert a.is_zero(block, 0, 8) == b.is_zero(block, 0, 8)

    def test_seeds_differ(self):
        a = SyntheticCompressibility(seed=1)
        b = SyntheticCompressibility(seed=2)
        diffs = sum(a.max_cf(i, 0) != b.max_cf(i, 0) for i in range(200))
        assert diffs > 0

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=7))
    @settings(max_examples=200, deadline=None)
    def test_monotonicity(self, block, sub):
        """A fitting 4-range implies its containing 2-range fits."""
        oracle = SyntheticCompressibility(seed=3)
        quad = (sub // 4) * 4
        pair = (sub // 2) * 2
        if oracle.fits(block, quad, 4):
            assert oracle.fits(block, pair, 2)

    def test_cf1_always_fits(self):
        oracle = SyntheticCompressibility()
        assert oracle.fits(1, 3, 1)

    def test_max_cf_consistent_with_fits(self):
        oracle = SyntheticCompressibility(seed=11)
        for block in range(100):
            for sub in range(8):
                cf = oracle.max_cf(block, sub)
                start = (sub // cf) * cf
                assert oracle.fits(block, start, cf)

    def test_regions_override_default(self):
        oracle = SyntheticCompressibility(seed=5)
        oracle.set_default_profile(PROFILE_LIBRARY["incompressible"])
        oracle.add_region(100, 200, PROFILE_LIBRARY["high"])
        assert oracle.profile_of(150).name == "high"
        assert oracle.profile_of(50).name == "incompressible"

    def test_region_bounds_validated(self):
        oracle = SyntheticCompressibility()
        with pytest.raises(ConfigurationError):
            oracle.add_region(10, 5, PROFILE_LIBRARY["high"])

    def test_note_write_bumps_version_eventually(self):
        oracle = SyntheticCompressibility(seed=9)
        oracle.set_default_profile(
            CompressibilityProfile("writey", write_instability=0.5)
        )
        changed = [oracle.note_write(42, i % 8) for i in range(64)]
        assert any(changed)
        assert oracle.version_of(42) == sum(changed)

    def test_version_changes_rerolls(self):
        oracle = SyntheticCompressibility(seed=13)
        oracle.set_default_profile(
            CompressibilityProfile("flip", p_cf4=0.5, p_cf2=0.75, write_instability=1.0)
        )
        before = [oracle.max_cf(7, s) for s in range(8)]
        for _ in range(8):
            oracle.note_write(7, 0)
        after = [oracle.max_cf(7, s) for s in range(8)]
        # With 8 version bumps at 50% fit probability, some range changed.
        assert before != after

    def test_empirical_rate_tracks_profile(self):
        oracle = SyntheticCompressibility(seed=21)
        profile = PROFILE_LIBRARY["medium"]
        hits = sum(oracle.fits(b, 0, 4, cacheline_aligned=False) for b in range(4000))
        assert abs(hits / 4000 - profile.p_cf4) < 0.05


class TestNullOracle:
    def test_everything_cf1(self):
        oracle = NullCompressibility()
        assert oracle.max_cf(5, 3) == 1
        assert oracle.fits(5, 0, 1)
        assert not oracle.fits(5, 0, 2)
        assert not oracle.is_zero(5, 0, 8)
        assert not oracle.note_write(5, 0)
        assert oracle.version_of(5) == 0
