"""The CLI entry point and the error hierarchy."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    LayoutError,
    MetadataError,
    ReproError,
    SimulationError,
)
from repro.__main__ import main


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "cls", [ConfigurationError, MetadataError, LayoutError, SimulationError]
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)
        with pytest.raises(ReproError):
            raise cls("boom")


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "YCSB-A" in out and "baryon" in out

    def test_no_workload_is_usage_error(self):
        assert main([]) == 2

    def test_unknown_workload(self, capsys):
        assert main(["not-a-workload"]) == 2

    def test_small_run(self, capsys):
        code = main(["YCSB-B", "baryon", "--accesses", "1200", "--scale", "512"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve_rate" in out
        assert "case mix" in out

    def test_flat_run(self, capsys):
        code = main(
            ["520.omnetpp_r", "hybrid2", "--accesses", "1000", "--scale", "512", "--flat"]
        )
        assert code == 0
        assert "ipc" in capsys.readouterr().out
