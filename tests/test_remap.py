"""Remap entries (Fig. 5b): rules, sorted-position lookup, encodings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import MetadataError
from repro.metadata.remap import RemapEntry, RemapTable, locate_sub_block


def make_entry(ranges, pointer=0, num_subs=8):
    """Build an entry from (start, cf) ranges."""
    remap = cf2 = cf4 = 0
    for start, cf in ranges:
        for sub in range(start, start + cf):
            remap |= 1 << sub
        if cf == 2:
            cf2 |= 1 << (start // 2)
        elif cf == 4:
            cf4 |= 1 << (start // 4)
    return RemapEntry(remap=remap, pointer=pointer, cf2=cf2, cf4=cf4, num_subs=num_subs)


class TestValidation:
    def test_cf4_requires_full_quad(self):
        with pytest.raises(MetadataError):
            RemapEntry(remap=0b0000_0111, cf4=0b01)

    def test_cf2_requires_full_pair(self):
        with pytest.raises(MetadataError):
            RemapEntry(remap=0b0000_0001, cf2=0b0001)

    def test_cf2_cf4_overlap_rejected(self):
        with pytest.raises(MetadataError):
            RemapEntry(remap=0xFF, cf4=0b11, cf2=0b0001)

    def test_all_ones_reserved_for_zero(self):
        with pytest.raises(MetadataError):
            RemapEntry(remap=0xFF, cf2=0xF, cf4=0x3)

    def test_hint_state_allowed(self):
        """Remap cleared but CF bits kept (Sec. III-F writeback hints)."""
        entry = RemapEntry(remap=0, cf2=0b0011, cf4=0b10)
        assert not entry.is_remapped
        assert entry.occupied_slots() == 0

    def test_zero_state(self):
        entry = RemapEntry(remap=0xFF, zero=True)
        assert entry.is_remapped
        assert entry.occupied_slots() == 0
        assert entry.sub_block_remapped(5)
        assert entry.ranges() == []


class TestRangesAndSlots:
    def test_range_of(self):
        entry = make_entry([(0, 1), (2, 2), (4, 4)])
        assert entry.range_of(0) == (0, 1)
        assert entry.range_of(2) == (2, 2)
        assert entry.range_of(3) == (2, 2)
        assert entry.range_of(6) == (4, 4)
        assert entry.range_of(1) is None

    def test_ranges_sorted(self):
        entry = make_entry([(4, 4), (0, 1), (2, 2)])
        assert entry.ranges() == [(0, 1), (2, 2), (4, 4)]

    def test_occupied_slots_formula(self):
        """popcount(remap) - popcount(cf2) - 3*popcount(cf4) (Sec. III-C)."""
        entry = make_entry([(0, 1), (2, 2), (4, 4)])
        assert entry.occupied_slots() == 3  # 7 remap bits - 1 - 3
        assert make_entry([(0, 4), (4, 4)]).occupied_slots() == 2
        assert make_entry([(i, 1) for i in range(8)]).occupied_slots() == 8

    def test_dirty_like_count(self):
        assert make_entry([(0, 4)]).dirty_like_count() == 4


class TestLocateSubBlock:
    def test_paper_fig5e_example(self):
        """A0, A2, A4-A7 and B1, B3 committed to block Z: B3 is slot 4."""
        A = make_entry([(0, 1), (2, 1), (4, 4)], pointer=1)
        B = make_entry([(1, 1), (3, 1)], pointer=1)
        entries = [A, B] + [RemapEntry()] * 6
        assert locate_sub_block(entries, 1, 3) == 4
        assert locate_sub_block(entries, 1, 1) == 3
        assert locate_sub_block(entries, 0, 0) == 0
        assert locate_sub_block(entries, 0, 2) == 1
        assert locate_sub_block(entries, 0, 6) == 2

    def test_different_pointer_not_counted(self):
        A = make_entry([(0, 4)], pointer=0)
        B = make_entry([(0, 1)], pointer=1)
        entries = [A, B] + [RemapEntry()] * 6
        assert locate_sub_block(entries, 1, 0) == 0

    def test_zero_block_occupies_nothing(self):
        A = RemapEntry(remap=0xFF, zero=True, pointer=1)
        B = make_entry([(0, 1)], pointer=1)
        entries = [A, B] + [RemapEntry()] * 6
        assert locate_sub_block(entries, 1, 0) == 0
        assert locate_sub_block(entries, 0, 3) is None  # zero data has no slot

    def test_unmapped_returns_none(self):
        entries = [RemapEntry()] * 8
        assert locate_sub_block(entries, 2, 5) is None

    def test_blk_off_bounds(self):
        with pytest.raises(MetadataError):
            locate_sub_block([RemapEntry()] * 8, 8, 0)

    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, 7), st.sampled_from([1, 2, 4])),
                max_size=4,
            ),
            min_size=8,
            max_size=8,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_slots_dense_and_disjoint(self, specs):
        """Property: remapped sub-blocks of one physical block get slot
        numbers 0..N-1 with no gaps or collisions."""
        entries = []
        for spec in specs:
            ranges = {}
            for sub, cf in spec:
                start = (sub // cf) * cf
                # Skip overlapping proposals.
                if any(s < start + cf and start < s + c for s, c in ranges.items()):
                    continue
                ranges[start] = cf
            entries.append(make_entry(list(ranges.items()), pointer=0))
        positions = []
        for off, entry in enumerate(entries):
            for start, _cf in entry.ranges():
                positions.append(locate_sub_block(entries, off, start))
        assert sorted(positions) == list(range(len(positions)))


class TestEncoding:
    def test_entry_is_16_bits_at_default(self):
        assert RemapEntry.entry_bits(pointer_bits=2) == 16

    @given(
        st.lists(st.tuples(st.integers(0, 1), st.sampled_from([1, 2, 4])), max_size=2),
        st.integers(0, 3),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, spec, pointer):
        ranges = {}
        for half, cf in spec:
            start = half * 4 if cf == 4 else (half * 4 // cf) * cf
            if start in ranges:
                continue
            ranges[start] = cf
        # Drop overlaps.
        chosen = {}
        covered = set()
        for start, cf in ranges.items():
            span = set(range(start, start + cf))
            if span & covered:
                continue
            covered |= span
            chosen[start] = cf
        entry = make_entry(list(chosen.items()), pointer=pointer)
        decoded = RemapEntry.decode(entry.encode(), pointer_bits=2)
        assert decoded == entry

    def test_zero_roundtrip(self):
        entry = RemapEntry(remap=0xFF, zero=True, pointer=3)
        decoded = RemapEntry.decode(entry.encode(), pointer_bits=2)
        assert decoded.zero and decoded.pointer == 3

    def test_wide_geometry(self):
        entry = RemapEntry(remap=(1 << 32) - 1, zero=True, num_subs=32)
        decoded = RemapEntry.decode(entry.encode(4), pointer_bits=4, num_subs=32)
        assert decoded.zero
        assert RemapEntry.entry_bits(2, 32) == 32 + 2 + 16 + 8

    def test_pointer_overflow_rejected(self):
        entry = make_entry([(0, 1)], pointer=4)
        with pytest.raises(MetadataError):
            entry.encode(pointer_bits=2)


class TestRemapTable:
    def test_default_identity(self):
        table = RemapTable()
        assert not table.get(123).is_remapped

    def test_set_get_clear(self):
        table = RemapTable()
        table.set(5, make_entry([(0, 2)], pointer=1))
        assert table.get(5).is_remapped
        table.clear(5)
        assert not table.get(5).is_remapped

    def test_unremapped_entries_not_stored(self):
        table = RemapTable()
        table.set(5, RemapEntry())
        assert table.remapped_blocks() == []

    def test_super_block_entries(self):
        table = RemapTable()
        table.set(8 * 3 + 2, make_entry([(0, 1)]))
        line = table.super_block_entries(3)
        assert len(line) == 8
        assert line[2].is_remapped
        assert not line[0].is_remapped

    def test_storage_accounting(self):
        table = RemapTable(pointer_bits=2)
        # 16 bits x blocks: 36 GB / 2 kB blocks = ~36 MB.
        blocks = (36 << 30) // 2048
        assert table.storage_bytes(blocks) == blocks * 2
