"""Statistics primitives and address mapping helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.address import AddressMapper, block_aligned, iter_cachelines, iter_sub_blocks
from repro.common.config import Geometry
from repro.common.errors import ConfigurationError
from repro.common.stats import CounterGroup, OnlineStats, RatioStat, geometric_mean


class TestCounterGroup:
    def test_unknown_counters_read_zero(self):
        c = CounterGroup()
        assert c.get("nope") == 0
        assert c["nope"] == 0

    def test_inc_and_total(self):
        c = CounterGroup("x")
        c.inc("a")
        c.inc("a", 4)
        c.inc("b", 2)
        assert c.get("a") == 5
        assert c.total("a", "b") == 7

    def test_merge(self):
        a, b = CounterGroup(), CounterGroup()
        a.inc("x", 3)
        b.inc("x", 2)
        b.inc("y", 1)
        a.merge(b)
        assert a.get("x") == 5 and a.get("y") == 1

    def test_snapshot_is_copy(self):
        c = CounterGroup()
        c.inc("a")
        snap = c.as_dict()
        c.inc("a")
        assert snap["a"] == 1

    def test_contains_and_items(self):
        c = CounterGroup()
        c.inc("a", 2)
        assert "a" in c
        assert "b" not in c
        assert dict(c.items()) == {"a": 2}

    def test_merge_returns_self_for_reduce(self):
        from functools import reduce

        parts = []
        for value in (1, 2, 3):
            part = CounterGroup()
            part.inc("x", value)
            parts.append(part)
        merged = reduce(CounterGroup.merge, parts)
        assert merged is parts[0]
        assert merged.get("x") == 6


class TestRatioStat:
    def test_rate(self):
        r = RatioStat()
        for hit in (True, True, False, True):
            r.record(hit)
        assert r.rate == pytest.approx(0.75)

    def test_empty_rate_is_zero(self):
        assert RatioStat().rate == 0.0

    def test_merge_folds_and_returns_self(self):
        a, b = RatioStat("a"), RatioStat("b")
        a.record(True)
        a.record(False)
        b.record(True)
        assert a.merge(b) is a
        assert a.hits == 2 and a.total == 3
        assert a.rate == pytest.approx(2 / 3)


class TestOnlineStats:
    def test_mean_and_std_match_numpy(self):
        rng = np.random.default_rng(3)
        data = rng.normal(10, 2, 500)
        stats = OnlineStats()
        stats.extend(data)
        assert stats.mean == pytest.approx(float(np.mean(data)))
        assert stats.stddev == pytest.approx(float(np.std(data, ddof=1)), rel=1e-6)
        assert stats.minimum == pytest.approx(float(data.min()))
        assert stats.maximum == pytest.approx(float(data.max()))

    def test_percentiles_match_numpy(self):
        rng = np.random.default_rng(5)
        data = rng.random(321)
        stats = OnlineStats(keep_samples=True)
        stats.extend(data)
        for q in (0.05, 0.25, 0.5, 0.75, 0.95):
            assert stats.percentile(q) == pytest.approx(
                float(np.quantile(data, q)), abs=1e-9
            )

    def test_percentile_requires_samples(self):
        with pytest.raises(ValueError):
            OnlineStats().percentile(0.5)

    def test_single_value(self):
        s = OnlineStats(keep_samples=True)
        s.add(42.0)
        assert s.percentile(0.5) == 42.0
        assert s.variance == 0.0

    def test_percentile_extremes_are_min_and_max(self):
        s = OnlineStats(keep_samples=True)
        s.extend([3.0, 1.0, 2.0])
        assert s.percentile(0.0) == 1.0
        assert s.percentile(1.0) == 3.0

    @pytest.mark.parametrize("q", [-0.1, 1.5, 100.0])
    def test_percentile_rejects_out_of_range_q(self, q):
        s = OnlineStats(keep_samples=True)
        s.add(1.0)
        with pytest.raises(ValueError):
            s.percentile(q)

    def test_percentile_no_samples_kept_is_zero(self):
        s = OnlineStats(keep_samples=True)
        assert s.percentile(0.5) == 0.0


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty(self):
        assert geometric_mean([]) == 0.0


class TestAddressMapper:
    def test_split_roundtrip(self):
        g = Geometry()
        mapper = AddressMapper(g, 128)
        for super_id in (0, 1, 127, 128, 99999):
            addr = super_id * g.super_block_size + 1234
            index, tag = mapper.split(addr)
            assert mapper.super_block_of(index, tag) == super_id

    @given(st.integers(min_value=0, max_value=1 << 40), st.sampled_from([32, 128, 8192]))
    @settings(max_examples=100, deadline=None)
    def test_split_roundtrip_property(self, super_id, num_sets):
        g = Geometry()
        mapper = AddressMapper(g, num_sets)
        index = mapper.set_index_of_super(super_id)
        tag = mapper.tag_of_super(super_id)
        assert mapper.super_block_of(index, tag) == super_id
        assert 0 <= index < num_sets

    def test_same_super_same_set(self):
        g = Geometry()
        mapper = AddressMapper(g, 64)
        base = 77 * g.super_block_size
        indices = {mapper.set_index(base + off) for off in range(0, g.super_block_size, g.block_size)}
        assert len(indices) == 1

    def test_rejects_non_positive_sets(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(Geometry(), 0)


class TestIterators:
    def test_iter_sub_blocks(self):
        g = Geometry()
        subs = list(iter_sub_blocks(3 * g.block_size + 100, g))
        assert len(subs) == 8
        assert subs[0] == 3 * g.block_size
        assert subs[-1] == 3 * g.block_size + 7 * 256

    def test_iter_cachelines(self):
        g = Geometry()
        lines = list(iter_cachelines(512 + 70, g))
        assert lines == [512, 576, 640, 704]

    def test_block_aligned(self):
        g = Geometry()
        assert block_aligned(4096, g)
        assert not block_aligned(4097, g)
