"""Directed edge cases across the controller and supporting structures."""

import dataclasses

import numpy as np
import pytest

from repro.common.config import CommitConfig, Geometry
from repro.common.errors import ConfigurationError
from repro.core import AccessCase, BaryonController
from repro.metadata.remap_cache import RemapCache
from repro.workloads.base import Trace

from tests.conftest import make_small_config
from tests.test_controller_cases import ScriptedOracle, make_controller


class TestCommitLastSlotEviction:
    """Case 2 write overflow where only the last range is evicted."""

    def build_committed_block(self):
        oracle = ScriptedOracle(cf=2)
        ctrl = make_controller(oracle, commit=CommitConfig(commit_all=True))
        ctrl.access(0, False)          # range (0, 2)
        ctrl.access(4 * 256, False)    # range (4, 2)
        # Force the stage set to replace: touch ways+1 distinct supers.
        n = ctrl.stage.num_sets
        sbs = ctrl.geometry.super_block_size
        for i in range(1, ctrl.stage.ways + 1):
            ctrl.access(i * n * sbs, False)
        assert ctrl.remap_table.get(0).is_remapped
        return ctrl, oracle

    def test_partial_eviction_keeps_earlier_ranges(self):
        ctrl, oracle = self.build_committed_block()
        oracle.overflow_on_write = True
        result = ctrl.access(4 * 256, True)  # write into the LAST range
        assert result.write_overflow
        assert ctrl.stats.get("committed_range_evictions") == 1
        entry = ctrl.remap_table.get(0)
        assert entry.sub_block_remapped(0)       # earlier range survives
        assert not entry.sub_block_remapped(4)   # last range evicted
        assert ctrl.access(0, False).case is AccessCase.COMMIT_HIT
        assert ctrl.access(4 * 256, False).case is AccessCase.COMMIT_MISS

    def test_non_last_overflow_evicts_whole_block(self):
        ctrl, oracle = self.build_committed_block()
        oracle.overflow_on_write = True
        result = ctrl.access(0, True)  # write into the FIRST range
        assert result.write_overflow
        assert not ctrl.remap_table.get(0).is_remapped


class TestStageStructuralPaths:
    def test_super_spans_multiple_stage_blocks(self):
        """A hot super-block can occupy a second physical block when its
        bound block is full and NOT the set's LRU (Fig. 8 bottom)."""
        ctrl = make_controller(ScriptedOracle(cf=1))
        n = ctrl.stage.num_sets
        sbs = ctrl.geometry.super_block_size
        ctrl.access(1 * n * sbs, False)  # super 1 -> becomes the LRU way
        for sub in range(8):             # block 0 of super 0 fills a way
            ctrl.access(sub * 256, False)
        # A second block of super 0: its data cannot join block 0's full
        # way; since that way is MRU, a block-level replacement evicts the
        # LRU (super 1) and super 0 spans two physical blocks.
        ctrl.access(2048, False)
        entries = ctrl.stage.lookup_super(0)
        assert len(entries) == 2
        assert ctrl.stage.lookup_super(n) == []  # super 1 evicted

    def test_sub_block_fifo_replacement_when_block_owns_everything(self):
        """A block owning all 8 slots FIFO-replaces within itself."""
        ctrl = make_controller(ScriptedOracle(cf=1))
        for sub in range(8):
            ctrl.access(sub * 256, False)
        # The 8 slots hold subs 0..7; writes force an overflow-free refetch
        # by touching a brand-new sub after evicting one... instead use the
        # 64 B-variant trick: shrink the geometry so there are >8 subs.
        config = make_small_config().with_sub_block_size(64)
        ctrl = BaryonController(config, seed=1)
        ctrl.oracle = ScriptedOracle(cf=1)
        for sub in range(33):  # 32 sub-blocks + wrap
            ctrl.access((sub % 32) * 64, False)
        assert ctrl.stats.get("accesses") == 33

    def test_regroup_move_on_block_level_replacement(self):
        """Case 3 insert into a full, non-LRU block regroups the data
        block into a fresh physical block (Fig. 8 bottom)."""
        ctrl = make_controller(ScriptedOracle(cf=1))
        n = ctrl.stage.num_sets
        sbs = ctrl.geometry.super_block_size
        # Fill block A of super 0 with 7 ranges from block 0 + 1 range of block 1.
        for sub in range(7):
            ctrl.access(sub * 256, False)
        ctrl.access(2048, False)
        # Make another super the LRU by touching super 0 last.
        ctrl.access(1 * n * sbs, False)
        ctrl.access(0, False)  # touch super 0 -> MRU
        # Now a new sub of block 0 must go to its (full) physical block,
        # which is not LRU -> block-level move.
        ctrl.access(7 * 256, False)
        assert ctrl.stats.get("stage_regroup_moves") >= 1
        found = ctrl.stage.lookup_sub_block(0, 0, 7)
        assert found is not None


class TestRemapCacheBehaviour:
    def test_eviction_after_capacity(self):
        cache = RemapCache(num_sets=2, ways=2)
        for super_id in range(6):
            cache.access(super_id)
        assert cache.stats.get("evictions") >= 1

    def test_hit_rate_improves_with_locality(self):
        cache = RemapCache(num_sets=4, ways=2)
        for _ in range(10):
            cache.access(1)
        assert cache.hit_rate > 0.8

    def test_invalidate(self):
        cache = RemapCache()
        cache.access(7)
        assert cache.contains(7)
        cache.invalidate(7)
        assert not cache.contains(7)

    def test_repair_under_full_set_with_resident_tag(self):
        """Repairing a line that is resident in a full set refills it in
        place: the drop frees the slot, so nothing else is evicted."""
        cache = RemapCache(num_sets=2, ways=2)
        cache.access(0)
        cache.access(2)  # set 0 now full: tags for supers 0 and 2
        assert cache.repair(2) is False  # repair reports a miss (re-probe)
        assert cache.contains(0) and cache.contains(2)
        assert cache.stats.get("evictions") == 0

    def test_repair_under_full_set_with_absent_tag(self):
        """Repairing a super absent from a full set behaves like a plain
        missing probe: the LRU line is evicted to make room."""
        cache = RemapCache(num_sets=2, ways=2)
        cache.access(0)
        cache.access(2)
        assert cache.repair(4) is False
        assert cache.contains(4) and cache.contains(2)
        assert not cache.contains(0)  # LRU victim
        assert cache.stats.get("evictions") == 1

    def test_repair_keeps_columnar_occupancy_exact(self):
        """With the columnar mirror attached, repair under a full set
        must leave the occupancy column exact (verified arena-wide)."""
        from repro.validation import make_tiny_config

        ctrl = BaryonController(make_tiny_config(), seed=3)
        rc = ctrl.remap_cache
        target = 5
        for way in range(rc.ways):  # fill target's set
            rc.access(target + way * rc.num_sets)
        assert rc.repair(target) is False
        ctrl.columnar.verify()
        assert rc.repair(target + rc.ways * rc.num_sets) is False
        ctrl.columnar.verify()

    def test_storage_is_32kb_at_table1_geometry(self):
        """256 sets x 8 ways x 16 B entry data = 32 kB (plus 8 kB tags)."""
        cache = RemapCache(num_sets=256, ways=8, entries_per_line=8)
        assert cache.storage_bytes(entry_bytes=2, tag_bytes=0) == 32 * 1024
        assert cache.storage_bytes(entry_bytes=2, tag_bytes=4) == 40 * 1024


class TestTraceValidation:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            Trace(
                name="bad",
                addrs=np.zeros(4, dtype=np.uint64),
                writes=np.zeros(3, dtype=bool),
                igaps=np.zeros(4, dtype=np.uint32),
                cores=np.zeros(4, dtype=np.uint16),
            )

    def test_unknown_profile_rejected(self):
        trace = Trace(
            name="t",
            addrs=np.zeros(1, dtype=np.uint64),
            writes=np.zeros(1, dtype=bool),
            igaps=np.zeros(1, dtype=np.uint32),
            cores=np.zeros(1, dtype=np.uint16),
            default_profile="nonexistent",
        )
        from repro.compression.synthetic import SyntheticCompressibility

        with pytest.raises(ConfigurationError):
            trace.apply_compressibility(SyntheticCompressibility())

    def test_empty_trace_write_fraction(self):
        trace = Trace(
            name="e",
            addrs=np.zeros(0, dtype=np.uint64),
            writes=np.zeros(0, dtype=bool),
            igaps=np.zeros(0, dtype=np.uint32),
            cores=np.zeros(0, dtype=np.uint16),
        )
        assert trace.write_fraction == 0.0


class TestHighAddresses:
    def test_far_addresses_work(self):
        ctrl = make_controller(ScriptedOracle(cf=2))
        addr = (1 << 36) + 5 * 256 + 64  # 64 GB territory
        result = ctrl.access(addr, False)
        assert result.case is AccessCase.BLOCK_MISS
        hit = ctrl.access(addr, False)
        assert hit.case is AccessCase.STAGE_HIT

    def test_many_supers_same_set_alias(self):
        ctrl = make_controller(ScriptedOracle(cf=1))
        n = ctrl.stage.num_sets
        sbs = ctrl.geometry.super_block_size
        for i in range(ctrl.stage.ways * 3):
            ctrl.access(i * n * sbs, False)
        # Set capacity respected throughout.
        set_entries = [
            e for e in ctrl.stage.tags.entries[0] if e.valid
        ]
        assert len(set_entries) <= ctrl.stage.ways


class TestGeometryVariants:
    @pytest.mark.parametrize("super_blocks", [2, 4, 16])
    def test_alternate_super_block_sizes_run(self, super_blocks):
        config = make_small_config()
        geometry = dataclasses.replace(config.geometry, super_block_blocks=super_blocks)
        config = dataclasses.replace(config, geometry=geometry)
        ctrl = BaryonController(config, seed=1)
        import random

        rng = random.Random(2)
        for _ in range(1500):
            addr = (rng.randrange(4 * config.layout.fast_capacity) // 64) * 64
            ctrl.access(addr, rng.random() < 0.3)
        assert ctrl.stats.get("accesses") == 1500
