"""Configuration: Table I defaults, derived sizes, and validation."""

import dataclasses

import pytest

from repro.common.config import (
    GB,
    KB,
    MB,
    BaryonConfig,
    CacheGeometry,
    CommitConfig,
    CompressionConfig,
    Geometry,
    HierarchyConfig,
    HybridLayout,
    MemoryTimings,
    SimulationConfig,
    StageConfig,
)
from repro.common.errors import ConfigurationError


class TestGeometry:
    def test_paper_defaults(self):
        g = Geometry()
        assert g.cacheline_size == 64
        assert g.sub_block_size == 256
        assert g.block_size == 2 * KB
        assert g.super_block_size == 16 * KB
        assert g.sub_blocks_per_block == 8
        assert g.cachelines_per_sub_block == 4

    def test_address_decomposition(self):
        g = Geometry()
        addr = 5 * g.super_block_size + 3 * g.block_size + 2 * g.sub_block_size + 65
        assert g.super_block_id(addr) == 5
        assert g.block_offset_in_super(addr) == 3
        assert g.sub_block_index(addr) == 2
        assert g.cacheline_index_in_sub_block(addr) == 1
        assert g.block_base(addr) % g.block_size == 0

    def test_aligned_range(self):
        g = Geometry()
        assert g.aligned_range(5, 1) == (5, 1)
        assert g.aligned_range(5, 2) == (4, 2)
        assert g.aligned_range(5, 4) == (4, 4)
        assert g.aligned_range(7, 4) == (4, 4)

    def test_aligned_range_rejects_bad_cf(self):
        with pytest.raises(ConfigurationError):
            Geometry().aligned_range(0, 3)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            Geometry(cacheline_size=48)
        with pytest.raises(ConfigurationError):
            Geometry(sub_block_size=32)  # below cacheline

    def test_64b_sub_blocking_variant(self):
        g = Geometry(sub_block_size=64)
        assert g.sub_blocks_per_block == 32
        assert g.cachelines_per_sub_block == 1


class TestHybridLayout:
    def test_paper_capacity_ratio(self):
        layout = HybridLayout()
        assert layout.fast_capacity == 4 * GB
        assert layout.slow_capacity == 32 * GB
        assert layout.capacity_ratio == 8

    def test_set_arithmetic(self):
        layout = HybridLayout(fast_capacity=8 * MB, slow_capacity=64 * MB)
        sets, ways = layout.num_sets_assoc(Geometry())
        assert ways == 4
        assert sets * ways == 8 * MB // (2 * KB)

    def test_fully_associative(self):
        layout = HybridLayout(
            fast_capacity=8 * MB, slow_capacity=64 * MB, fully_associative=True
        )
        sets, ways = layout.num_sets_assoc(Geometry())
        assert sets == 1
        assert ways == 8 * MB // (2 * KB)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HybridLayout(fast_capacity=3 * MB, slow_capacity=10 * MB)
        with pytest.raises(ConfigurationError):
            HybridLayout(flat_fraction=1.5)


class TestStageConfig:
    def test_paper_geometry(self):
        stage = StageConfig()
        assert stage.size_bytes == 64 * MB
        assert stage.num_sets(Geometry()) == 8192
        assert stage.ways == 4

    def test_miss_counter_is_16_bit(self):
        assert StageConfig().miss_counter_max() == 0xFFFF


class TestMemoryTimings:
    def test_latency_gap(self):
        t = MemoryTimings()
        assert t.slow_read_latency_cycles > 5 * t.fast_read_latency_cycles
        assert t.slow_write_latency_cycles > t.slow_read_latency_cycles

    def test_bandwidth_gap(self):
        t = MemoryTimings()
        assert t.slow_cycles_per_byte() > t.fast_cycles_per_byte()

    def test_fast_must_be_faster(self):
        with pytest.raises(ConfigurationError):
            MemoryTimings(fast_read_latency_cycles=300)


class TestBaryonConfig:
    def test_stage_tag_entry_is_108_bits(self):
        """The paper's Fig. 5a arithmetic: 14 B per entry."""
        assert BaryonConfig().stage_tag_entry_bits() == 108

    def test_stage_tag_array_is_448_kb(self):
        """64 MB stage area x 14 B per 2 kB block = 448 kB on-chip."""
        assert BaryonConfig().stage_tag_array_bytes() == 448 * KB

    def test_remap_table_is_0_1_percent(self):
        """2 B per 2 kB block ~ 0.1% of total capacity (Sec. III-B)."""
        cfg = BaryonConfig()
        total = cfg.layout.fast_capacity + cfg.layout.slow_capacity
        assert cfg.remap_table_bytes() / total == pytest.approx(0.001, rel=0.05)

    def test_mode_constructors(self):
        assert BaryonConfig.cache_mode().layout.flat_fraction == 0.0
        flat = BaryonConfig.flat_mode()
        assert flat.layout.flat_fraction == 1.0
        fa = BaryonConfig.fully_associative()
        assert fa.layout.fully_associative

    def test_sub_block_variant(self):
        cfg = BaryonConfig().with_sub_block_size(64)
        assert cfg.geometry.sub_block_size == 64
        assert cfg.geometry.block_size == 2 * KB


class TestCommitAndCompressionConfig:
    def test_effective_k(self):
        assert CommitConfig(k=4.0).effective_k() == 4.0
        assert CommitConfig(stability_only=True).effective_k() == float("inf")

    def test_compression_validation(self):
        with pytest.raises(ConfigurationError):
            CompressionConfig(algorithms=())


class TestHierarchyAndSim:
    def test_table1_hierarchy(self):
        h = HierarchyConfig()
        assert h.cores == 16
        assert h.llc.size_bytes == 16 * MB
        assert h.llc.latency_cycles == 38
        assert h.l2.latency_cycles == 9

    def test_cache_geometry_sets(self):
        c = CacheGeometry("L", 64 * KB, 8)
        assert c.num_sets == 64 * KB // (8 * 64)

    def test_sim_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(base_cpi=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(warmup_fraction=1.0)
