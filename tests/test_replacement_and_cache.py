"""Replacement policies, the generic SRAM cache, and the hierarchy."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.replacement import CacheLine, make_set
from repro.cache.sram_cache import SetAssociativeCache
from repro.common.config import CacheGeometry, HierarchyConfig

KB = 1024


def fill(cache_set, tags):
    for tag in tags:
        cache_set.insert(CacheLine(tag))


class TestPolicies:
    def test_lru_victim(self):
        s = make_set("lru", 3)
        fill(s, "abc")
        s.touch(s.lookup("a"))
        assert s.victim().tag == "b"

    def test_lru_mru(self):
        s = make_set("lru", 3)
        fill(s, "abc")
        s.touch(s.lookup("a"))
        assert s.mru().tag == "a"

    def test_fifo_ignores_touches(self):
        s = make_set("fifo", 3)
        fill(s, "abc")
        s.touch(s.lookup("a"))
        assert s.victim().tag == "a"

    def test_lfu_prefers_least_used(self):
        s = make_set("lfu", 3)
        fill(s, "abc")
        for _ in range(3):
            s.touch(s.lookup("a"))
        s.touch(s.lookup("c"))
        assert s.victim().tag == "b"

    def test_clock_second_chance(self):
        s = make_set("clock", 3)
        fill(s, "abc")
        # All referenced: the hand clears bits then evicts the first.
        victim = s.victim()
        assert victim.tag in "abc"
        s.evict(victim.tag)
        assert len(s.lines) == 2

    def test_clock_survives_invalidation(self):
        s = make_set("clock", 3)
        fill(s, "abc")
        s.invalidate("b")
        assert s.victim().tag in "ac"

    def test_random_is_deterministic_under_seed(self):
        a = make_set("random", 4)
        b = make_set("random", 4)
        fill(a, "wxyz")
        fill(b, "wxyz")
        assert a.victim().tag == b.victim().tag

    def test_lfu_tiebreak_is_insertion_order(self):
        s = make_set("lfu", 3)
        fill(s, "abc")
        # Equal counters: the oldest insertion must lose, not whichever
        # line object happens to have the lowest id().
        assert s.victim().tag == "a"
        s.evict("a")
        s.insert(CacheLine("d"))
        assert s.victim().tag == "b"

    def test_lfu_victim_deterministic_across_fork(self):
        import os

        if not hasattr(os, "fork"):
            pytest.skip("no fork on this platform")

        def build():
            s = make_set("lfu", 4)
            fill(s, "wxyz")
            s.touch(s.lookup("y"))
            return s

        parent_victims = []
        s = build()
        while s.lines:
            victim = s.victim().tag
            parent_victims.append(victim)
            s.evict(victim)
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: same construction, report the victim order
            os.close(read_fd)
            s = build()
            order = []
            while s.lines:
                victim = s.victim().tag
                order.append(victim)
                s.evict(victim)
            os.write(write_fd, "".join(order).encode())
            os._exit(0)
        os.close(write_fd)
        child_victims = os.read(read_fd, 16).decode()
        os.close(read_fd)
        assert os.waitpid(pid, 0)[1] == 0
        assert "".join(parent_victims) == child_victims

    def test_clock_hand_follows_mid_ring_removal(self):
        s = make_set("clock", 3)
        fill(s, "abc")
        s._hand = 2  # pointing at "c"
        s.evict("a")
        assert s._ring[s._hand] == "c"
        # Removing the pointed-at line advances to the next element.
        s._hand = 0
        s.evict("b")
        assert s._ring == ["c"] and s._hand == 0

    def test_clock_second_chance_preserved_after_eviction(self):
        s = make_set("clock", 3)
        fill(s, "abc")
        assert s.victim().tag == "a"  # full sweep clears all bits
        s.touch(s.lookup("a"))
        assert s.victim().tag == "b"  # hand now past "a", at "b"
        s.touch(s.lookup("b"))
        s.touch(s.lookup("c"))
        s.evict("a")  # removal below the hand must not shift it onto "c"
        s.insert(CacheLine("d"))
        # b, c, d all referenced: the sweep starts at "b" (the line the
        # hand was on), so "b" loses its bit first and is the victim.
        assert s.victim().tag == "b"

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_set("mru", 2)

    def test_insert_full_raises(self):
        s = make_set("lru", 1)
        fill(s, "a")
        with pytest.raises(ValueError):
            s.insert(CacheLine("b"))


class TestSetAssociativeCache:
    def make(self, size_kb=4, ways=2):
        return SetAssociativeCache(CacheGeometry("T", size_kb * KB, ways))

    def test_miss_then_hit(self):
        cache = self.make()
        assert not cache.access(0x1000, False).hit
        assert cache.access(0x1000, False).hit
        assert cache.hit_rate == 0.5

    def test_dirty_writeback_address(self):
        cache = self.make(size_kb=1, ways=1)  # 16 sets x 1 way
        cache.access(0x0000, True)
        outcome = cache.access(0x0000 + 1 * KB, False)  # same set, conflict
        assert not outcome.hit
        assert outcome.writeback_addr == 0x0000

    def test_clean_eviction_no_writeback(self):
        cache = self.make(size_kb=1, ways=1)
        cache.access(0x0000, False)
        outcome = cache.access(0x0000 + 1 * KB, False)
        assert outcome.writeback_addr is None
        assert outcome.victim_addr == 0x0000

    def test_install_is_idempotent(self):
        cache = self.make()
        assert not cache.install(0x40).hit
        assert cache.install(0x40).hit
        assert cache.access(0x40, False).hit

    def test_invalidate_returns_dirty(self):
        cache = self.make()
        cache.access(0x80, True)
        assert cache.invalidate(0x80) == 0x80
        assert cache.invalidate(0x80) is None

    def test_same_line_different_bytes(self):
        cache = self.make()
        cache.access(0x100, False)
        assert cache.access(0x13F, False).hit  # same 64 B line


class TestHierarchy:
    def make(self):
        return CacheHierarchy(
            HierarchyConfig(
                cores=2,
                l1d=CacheGeometry("L1D", 1 * KB, 2, latency_cycles=4),
                l2=CacheGeometry("L2", 4 * KB, 2, latency_cycles=9),
                llc=CacheGeometry("LLC", 16 * KB, 4, latency_cycles=38),
            )
        )

    def test_miss_goes_to_memory(self):
        h = self.make()
        result = h.access(0x10000, False, core=0)
        assert result.llc_miss
        assert result.hit_level == "MEM"
        assert result.latency_cycles == 4 + 9 + 38

    def test_l1_hit_after_fill(self):
        h = self.make()
        h.access(0x10000, False, core=0)
        result = h.access(0x10000, False, core=0)
        assert result.hit_level == "L1"
        assert result.latency_cycles == 4

    def test_private_l1_per_core(self):
        h = self.make()
        h.access(0x10000, False, core=0)
        result = h.access(0x10000, False, core=1)
        # Core 1's private L1/L2 miss; shared LLC hits.
        assert result.hit_level == "LLC"

    def test_install_llc_prefetch(self):
        h = self.make()
        h.install_llc(0x20000)
        result = h.access(0x20000, False, core=0)
        assert result.hit_level == "LLC"

    def test_dirty_writeback_eventually_reaches_memory(self):
        h = self.make()
        wbs = []
        # Write a long stream so dirty lines cascade out of the LLC.
        for i in range(4096):
            result = h.access(i * 64, True, core=0)
            wbs.extend(result.writebacks)
        assert wbs, "dirty LLC victims must surface as memory writebacks"

    def test_llc_miss_rate(self):
        h = self.make()
        h.access(0x0, False)
        h.access(0x0, False)
        assert 0.0 <= h.llc_miss_rate <= 1.0
