"""Device models: channel queueing, latency, traffic, and energy."""

import pytest

from repro.common.config import MemoryTimings
from repro.common.errors import ConfigurationError
from repro.devices import ChannelPool, EnergyModel, HybridMemoryDevices, MemoryDevice


class TestChannelPool:
    def test_idle_transfer_has_no_queue(self):
        pool = ChannelPool(1, 0.5)
        queue, duration = pool.transfer(now=0.0, nbytes=100)
        assert queue == 0.0
        assert duration == 50.0

    def test_back_to_back_queues(self):
        pool = ChannelPool(1, 1.0)
        pool.transfer(0.0, 100)
        queue, _ = pool.transfer(0.0, 100)
        assert queue == pytest.approx(100.0)

    def test_multiple_channels_parallel(self):
        pool = ChannelPool(2, 1.0)
        pool.transfer(0.0, 100)
        queue, _ = pool.transfer(0.0, 100)
        assert queue == 0.0  # second channel is free

    def test_priority_discount(self):
        pool = ChannelPool(1, 1.0, priority_discount=0.25)
        pool.transfer(0.0, 100)
        queue, _ = pool.transfer(0.0, 100, priority=True)
        assert queue == pytest.approx(25.0)

    def test_priority_still_consumes_bandwidth(self):
        pool = ChannelPool(1, 1.0)
        pool.transfer(0.0, 100, priority=True)
        queue, _ = pool.transfer(0.0, 100)
        assert queue == pytest.approx(100.0)

    def test_zero_bytes_free(self):
        pool = ChannelPool(1, 1.0)
        assert pool.transfer(0.0, 0) == (0.0, 0.0)

    def test_utilization(self):
        pool = ChannelPool(2, 1.0)
        pool.transfer(0.0, 100)
        assert pool.utilization(100.0) == pytest.approx(0.5)
        assert pool.utilization(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelPool(0, 1.0)
        with pytest.raises(ConfigurationError):
            ChannelPool(1, -1.0)
        with pytest.raises(ConfigurationError):
            ChannelPool(1, 1.0, priority_discount=2.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            ChannelPool(1, 1.0).transfer(0.0, -1)


class TestMemoryDevice:
    def make(self):
        return MemoryDevice("t", read_latency=40, write_latency=40, channels=2, cycles_per_byte=0.1)

    def test_read_latency_components(self):
        dev = self.make()
        access = dev.read(0.0, 64)
        assert access.latency_cycles == 40
        assert access.transfer_cycles == pytest.approx(6.4)
        assert access.total_cycles == pytest.approx(46.4)

    def test_traffic_counters(self):
        dev = self.make()
        dev.read(0.0, 64)
        dev.read(0.0, 128, demand=False)
        dev.write(0.0, 256)
        assert dev.stats.get("read_bytes") == 192
        assert dev.stats.get("demand_read_bytes") == 64
        assert dev.stats.get("fill_read_bytes") == 128
        assert dev.stats.get("write_bytes") == 256
        assert dev.total_bytes == 448

    def test_reset(self):
        dev = self.make()
        dev.read(0.0, 64)
        dev.reset()
        assert dev.total_bytes == 0


class TestHybridDevices:
    def test_table1_asymmetry(self):
        devices = HybridMemoryDevices()
        fast = devices.fast.read(0.0, 64)
        slow = devices.slow.read(0.0, 64)
        assert slow.latency_cycles > 5 * fast.latency_cycles
        assert slow.transfer_cycles > fast.transfer_cycles

    def test_write_latencies(self):
        devices = HybridMemoryDevices()
        assert devices.slow.write_latency > devices.slow.read_latency


class TestEnergyModel:
    def test_energy_tracks_traffic(self):
        devices = HybridMemoryDevices()
        model = EnergyModel(devices.timings)
        before = model.report(devices.fast, devices.slow).total_j
        devices.slow.write(0.0, 1 << 20)
        after = model.report(devices.fast, devices.slow).total_j
        assert after > before

    def test_slow_writes_cost_most_per_bit(self):
        t = MemoryTimings()
        devices_a = HybridMemoryDevices(t)
        devices_b = HybridMemoryDevices(t)
        model = EnergyModel(t)
        devices_a.slow.write(0.0, 1 << 20)
        devices_b.fast.write(0.0, 1 << 20)
        a = model.report(devices_a.fast, devices_a.slow).total_j
        b = model.report(devices_b.fast, devices_b.slow).total_j
        assert a > b

    def test_report_fields(self):
        devices = HybridMemoryDevices()
        devices.fast.read(0.0, 4096)
        report = EnergyModel(devices.timings).report(devices.fast, devices.slow)
        assert report.fast_dynamic_j > 0
        assert report.fast_act_pre_j > 0
        assert report.slow_dynamic_j == 0
        assert report.total_j == pytest.approx(
            report.fast_dynamic_j + report.fast_act_pre_j
        )
