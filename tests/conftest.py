"""Shared fixtures: small, fast configurations used across the suite."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.config import (
    BaryonConfig,
    HybridLayout,
    SimulationConfig,
    StageConfig,
    HierarchyConfig,
    CacheGeometry,
    MB,
)

KB = 1024


def make_small_config(
    flat: float = 0.0,
    fully_associative: bool = False,
    fast_mb: int = 4,
    stage_kb: int = 256,
    stage_enabled: bool = True,
    **overrides,
) -> BaryonConfig:
    """A tiny but structurally faithful Baryon configuration."""
    layout = HybridLayout(
        fast_capacity=fast_mb * MB,
        slow_capacity=8 * fast_mb * MB,
        associativity=4,
        flat_fraction=flat,
        fully_associative=fully_associative,
    )
    stage = StageConfig(
        size_bytes=stage_kb * KB,
        ways=4,
        enabled=stage_enabled,
        aging_period_accesses=256,
    )
    return dataclasses.replace(BaryonConfig(), layout=layout, stage=stage, **overrides)


def make_small_sim_config() -> SimulationConfig:
    hierarchy = HierarchyConfig(
        cores=2,
        l1d=CacheGeometry("L1D", 8 * KB, 8, latency_cycles=4),
        l2=CacheGeometry("L2", 32 * KB, 8, latency_cycles=9),
        llc=CacheGeometry("LLC", 64 * KB, 16, latency_cycles=38),
    )
    return SimulationConfig(hierarchy=hierarchy, warmup_fraction=0.1)


@pytest.fixture
def small_config() -> BaryonConfig:
    return make_small_config()


@pytest.fixture
def flat_config() -> BaryonConfig:
    return make_small_config(flat=1.0)


@pytest.fixture
def fa_config() -> BaryonConfig:
    return make_small_config(flat=1.0, fully_associative=True)


@pytest.fixture
def sim_config() -> SimulationConfig:
    return make_small_sim_config()
