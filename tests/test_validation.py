"""Tests for the differential-oracle validation subsystem."""

import random

import pytest

from repro.common.errors import OracleViolation
from repro.core.events import AccessCase
from repro.validation import (
    ContentBackedController,
    GoldenReference,
    ddmin,
    emit_fixture,
    generate_trace,
    make_tiny_config,
    replay,
    run_case,
    run_differential,
    run_fixture,
    run_fuzz,
    sample_config_kwargs,
    selftest_case,
    variant_config,
)


def _clean_replay(config, trace, seed=1):
    controller = ContentBackedController(config, seed=seed)
    return replay(controller, trace)


class TestContentOracle:
    def test_read_your_writes_simple(self):
        config = make_tiny_config()
        trace = [(0, True), (0, False), (64, True), (64, False), (0, False)]
        controller = _clean_replay(config, trace)
        # Three reads, each seeing the last write: tokens 1, 2, 1.
        assert controller.served_reads == [1, 2, 1]

    def test_pristine_reads_serve_zero(self):
        config = make_tiny_config()
        controller = _clean_replay(config, [(4096, False), (8192, False)])
        assert controller.served_reads == [0, 0]

    def test_covers_every_access_flow_case(self):
        """One generated trace per scheme walks all Fig. 6 cases cleanly."""
        seen = set()
        for variant in ("cache", "flat", "fa", "64b"):
            config = variant_config(make_tiny_config(), variant)
            for seed in (1, 2, 3):
                trace = generate_trace(random.Random(seed), config, 700)
                controller = ContentBackedController(config, seed=seed)
                replay(controller, trace)
                seen |= {
                    key for key in controller.stats.as_dict()
                    if key.startswith("case_")
                }
        expected = {
            f"case_{case.value}"
            for case in (
                AccessCase.STAGE_HIT, AccessCase.COMMIT_HIT,
                AccessCase.STAGE_MISS, AccessCase.COMMIT_MISS,
                AccessCase.BLOCK_MISS, AccessCase.FAST_HOME,
            )
        }
        assert expected <= seen

    def test_no_stage_ablation_clean(self):
        config = make_tiny_config(stage_enabled=False)
        trace = generate_trace(random.Random(4), config, 500)
        _clean_replay(config, trace)

    def test_compression_disabled_clean(self):
        config = make_tiny_config(compression_enabled=False)
        trace = generate_trace(random.Random(5), config, 500)
        _clean_replay(config, trace)

    def test_conservation_checked_during_replay(self):
        config = make_tiny_config()
        trace = generate_trace(random.Random(6), config, 300)
        controller = _clean_replay(config, trace)
        assert controller.vstats.get("conservation_checks") > 0
        # Stage and committed-fast stores never hold the same line.
        assert not (controller.c_stage.keys() & controller.c_fast.keys())

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            ContentBackedController(make_tiny_config(), inject_bug="nope")

    @pytest.mark.parametrize("bug", ["drop_dirty_writeback", "commit_stale_data"])
    def test_injected_bug_caught(self, bug):
        kwargs, trace = selftest_case()
        if bug == "commit_stale_data":
            # commit_all forces commits so the stale-commit hook fires.
            kwargs = dict(kwargs, commit_all=True)
            trace = generate_trace(
                random.Random(8), make_tiny_config(**kwargs), 600
            )
        with pytest.raises(OracleViolation) as excinfo:
            run_case(kwargs, trace, seed=7, inject_bug=bug)
        assert excinfo.value.kind == "stale_read"
        assert excinfo.value.addr is not None

    def test_selftest_clean_without_injection(self):
        kwargs, trace = selftest_case()
        run_case(kwargs, trace, seed=7)


class TestDifferential:
    def test_all_designs_agree(self):
        config = make_tiny_config()
        trace = generate_trace(random.Random(10), config, 400)
        streams = run_differential(config, trace, seed=2)
        assert len(streams) == 8
        reference = next(iter(streams.values()))
        assert all(s == reference for s in streams.values())

    def test_golden_reference_serves_last_write(self):
        class Transparent:
            def access(self, addr, is_write, now=None):
                return None

        shim = GoldenReference(Transparent())
        for addr, is_write in [(0, True), (0, False), (64, False), (0, True), (0, False)]:
            shim.access(addr, is_write)
        assert shim.served_reads == [1, 0, 2]

    def test_differential_flags_injected_bug(self):
        kwargs, trace = selftest_case()
        config = make_tiny_config(**kwargs)
        with pytest.raises(OracleViolation):
            run_differential(config, trace, seed=7, inject_bug="drop_dirty_writeback")

    def test_variant_config_unknown(self):
        with pytest.raises(ValueError):
            variant_config(make_tiny_config(), "hbm")


class TestFuzz:
    def test_fuzz_clean_and_deterministic(self):
        a = run_fuzz(iterations=4, seed=21, n_accesses=250)
        b = run_fuzz(iterations=4, seed=21, n_accesses=250)
        assert a.ok and b.ok
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_fuzz_collects_injected_failures(self):
        report = run_fuzz(
            iterations=6, seed=5, n_accesses=400, inject_bug="commit_stale_data"
        )
        assert report.failures
        failure = report.failures[0]
        assert failure.config_kwargs and failure.trace
        # The failure must replay from its recorded identity alone.
        with pytest.raises(OracleViolation):
            run_case(
                failure.config_kwargs, failure.trace, failure.seed,
                inject_bug="commit_stale_data",
            )

    def test_sampled_configs_constructible(self):
        for i in range(25):
            kwargs = sample_config_kwargs(random.Random(i))
            make_tiny_config(**kwargs)


class TestMinimizeAndEmit:
    def test_ddmin_finds_minimal_pair(self):
        trace = [(i * 64, i % 3 == 0) for i in range(40)]

        def fails(t):
            records = set(t)
            return (0, True) in records and (12 * 64, True) in records

        minimal = ddmin(trace, fails)
        assert sorted(minimal) == [(0, True), (12 * 64, True)]

    def test_ddmin_requires_failing_input(self):
        with pytest.raises(ValueError):
            ddmin([(0, True)], lambda t: False)

    def test_selftest_minimizes_small(self):
        kwargs, trace = selftest_case()

        def fails(t):
            try:
                run_case(kwargs, list(t), seed=7, inject_bug="drop_dirty_writeback")
                return False
            except OracleViolation:
                return True

        minimal = ddmin(trace, fails)
        assert len(minimal) <= 20
        assert fails(minimal)

    def test_emitted_fixture_reproduces(self, tmp_path):
        kwargs, trace = selftest_case()
        fixture = emit_fixture(
            tmp_path / "test_regression_demo.py", trace, kwargs,
            seed=7, inject_bug="drop_dirty_writeback", tag="demo",
        )
        source = fixture.read_text()
        assert "pytest.raises(OracleViolation)" in source
        assert "make_tiny_config" in source
        run_fixture(fixture)  # raises if the fixture does not reproduce

    def test_run_fixture_rejects_testless_file(self, tmp_path):
        path = tmp_path / "test_empty.py"
        path.write_text("x = 1\n")
        with pytest.raises(ValueError):
            run_fixture(path)


class TestValidateCli:
    def test_validate_subcommand_passes(self, capsys):
        from repro.__main__ import main

        assert main(["validate", "--fuzz", "2", "--seed", "7",
                     "--accesses", "300"]) == 0
        out = capsys.readouterr().out
        assert "validation PASSED" in out
        assert "selftest" in out

    def test_validate_metrics_export(self, capsys):
        from repro.__main__ import main

        assert main(["validate", "--fuzz", "1", "--seed", "3",
                     "--accesses", "200", "--skip-selftest",
                     "--metrics", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "repro_validation_total" in out

    def test_validate_rejects_bad_args(self):
        from repro.__main__ import main

        assert main(["validate", "--fuzz", "-1"]) == 2
