"""The span tracer: ids, nesting, adoption, persistence, rendering."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.spans import (
    NULL_SPANS,
    Span,
    SpanTracer,
    format_span_tree,
    load_spans,
)


class FakeClock:
    """Deterministic wall clock: each read advances by ``step``."""

    def __init__(self, start=100.0, step=0.5):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpanLifecycle:
    def test_ids_are_deterministic_and_origin_prefixed(self):
        tracer = SpanTracer(origin="c7")
        a = tracer.start("a")
        b = tracer.start("b")
        assert a.span_id == "c7-0001"
        assert b.span_id == "c7-0002"
        plain = SpanTracer()
        assert plain.start("x").span_id == "0001"

    def test_parentage_and_duration(self):
        tracer = SpanTracer(clock=FakeClock())
        root = tracer.start("sweep")
        child = tracer.start("cell", parent=root, index=3)
        assert child.parent_id == root.span_id
        assert child.attributes == {"index": 3}
        tracer.end(child)
        tracer.end(root, failed=0)
        assert child.end_s is not None and child.duration_s > 0
        assert root.attributes == {"failed": 0}
        # Children end first, so they are appended first.
        assert [s.name for s in tracer.finished] == ["cell", "sweep"]

    def test_end_is_idempotent_and_tolerates_none(self):
        tracer = SpanTracer()
        span = tracer.start("s")
        tracer.end(span)
        first_end = span.end_s
        tracer.end(span)  # second end: no-op
        assert span.end_s == first_end
        assert len(tracer.finished) == 1
        tracer.end(None)  # disabled-path convenience

    def test_open_span_accounting(self):
        tracer = SpanTracer()
        a = tracer.start("a")
        tracer.start("b")
        assert tracer.open_spans == 2
        tracer.end(a)
        assert tracer.open_spans == 1
        assert len(tracer) == 1

    def test_events_carry_timestamp_and_fields(self):
        tracer = SpanTracer(clock=FakeClock())
        span = tracer.start("sweep")
        tracer.event(span, "requeue", cell=4, attempt=1)
        tracer.event(None, "dropped")  # None target: no-op
        assert len(span.events) == 1
        event = span.events[0]
        assert event["name"] == "requeue"
        assert event["cell"] == 4 and event["attempt"] == 1
        assert event["t"] > 100.0

    def test_context_manager_closes_and_marks_errors(self):
        tracer = SpanTracer()
        with tracer.span("ok", phase="merge") as span:
            assert span.end_s is None
        assert span.end_s is not None
        with pytest.raises(ValueError):
            with tracer.span("bad") as span:
                raise ValueError("boom")
        assert span.attributes["error"] == "ValueError: boom"
        assert span.end_s is not None


class TestAdoption:
    def test_worker_roots_are_reparented(self):
        worker = SpanTracer(origin="c3")
        with worker.span("cell.trace"):
            pass
        with worker.span("sim.run") as run:
            with worker.span("sim.measured", parent=run):
                pass
        parent = SpanTracer(origin="sweep")
        cell = parent.start("cell", index=3)
        parent.adopt(worker.export(), parent=cell)
        parent.end(cell)
        by_name = {s.name: s for s in parent.finished}
        assert by_name["cell.trace"].parent_id == cell.span_id
        assert by_name["sim.run"].parent_id == cell.span_id
        # Non-root worker spans keep their worker-side parent.
        assert by_name["sim.measured"].parent_id == by_name["sim.run"].span_id

    def test_adopt_without_parent_keeps_roots(self):
        worker = SpanTracer(origin="c1")
        with worker.span("sim.run"):
            pass
        parent = SpanTracer()
        parent.adopt(worker.export())
        assert parent.finished[0].parent_id is None


class TestPersistence:
    def test_dict_roundtrip(self):
        tracer = SpanTracer(origin="t")
        with tracer.span("s", k="v") as span:
            tracer.event(span, "e", n=1)
        restored = Span.from_dict(tracer.export()[0])
        assert restored == tracer.finished[0]

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = SpanTracer(origin="sweep")
        with tracer.span("sweep"):
            with tracer.span("cell"):
                pass
        path = tmp_path / "spans.jsonl"
        assert tracer.dump_jsonl(str(path)) == 2
        loaded = load_spans(str(path))
        assert loaded == tracer.export()

    def test_load_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"span_id": "a", "name": "x", "start_s": 1}\n{oops\n')
        with pytest.raises(ConfigurationError, match="line 2"):
            load_spans(str(path))
        path.write_text('[1, 2]\n')
        with pytest.raises(ConfigurationError, match="not a span object"):
            load_spans(str(path))
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_spans(str(tmp_path / "missing.jsonl"))


class TestFormatTree:
    def test_renders_nested_tree_in_start_order(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        root = tracer.start("sweep", cells=2)
        first = tracer.start("cell", parent=root, index=0)
        tracer.end(first)
        second = tracer.start("cell", parent=root, index=1)
        tracer.end(second)
        tracer.end(root)
        text = tracer.format_tree()
        lines = text.splitlines()
        assert lines[0].startswith("sweep")
        assert lines[1].startswith("  cell") and "index=0" in lines[1]
        assert lines[2].startswith("  cell") and "index=1" in lines[2]

    def test_orphans_are_promoted_to_roots(self):
        spans = [{
            "span_id": "x-1", "parent_id": "gone", "name": "orphan",
            "start_s": 1.0, "end_s": 2.0, "attributes": {}, "events": [],
        }]
        assert format_span_tree(spans).startswith("orphan")

    def test_open_spans_and_events_annotated(self):
        tracer = SpanTracer()
        span = tracer.start("s")
        tracer.event(span, "e")
        text = format_span_tree([span.to_dict()])
        assert "(open)" in text and "[1 event(s)]" in text


class TestNullSpanTracer:
    def test_every_call_is_a_noop(self):
        assert not NULL_SPANS.enabled
        assert NULL_SPANS.start("x") is None
        NULL_SPANS.end(None, k=1)
        NULL_SPANS.event(None, "e")
        NULL_SPANS.adopt([{"span_id": "a"}])
        with NULL_SPANS.span("x") as span:
            assert span is None
        assert NULL_SPANS.export() == []
        assert len(NULL_SPANS) == 0

    def test_export_is_json_serializable(self):
        tracer = SpanTracer()
        with tracer.span("s", design="baryon", seed=3):
            pass
        json.dumps(tracer.export())
