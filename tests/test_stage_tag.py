"""Stage tag metadata (Fig. 5a): slot prefix code and entry round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import MetadataError
from repro.metadata.stage_tag import (
    EMPTY_SLOT,
    ENTRY_BITS,
    RangeSlot,
    StageTagArray,
    StageTagEntry,
)


def slot_strategy():
    def build(cf, dirty, blk, idx):
        start = (idx % (8 // cf)) * cf
        return RangeSlot(cf=cf, dirty=dirty, blk_off=blk, sub_start=start)

    return st.builds(
        build,
        st.sampled_from([1, 2, 4]),
        st.booleans(),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    )


class TestRangeSlot:
    def test_paper_example_h2_h3(self):
        """'01 (CF=2), 0 (clean), 111 (8th block H), 01 (2nd pair)'."""
        slot = RangeSlot(cf=2, dirty=False, blk_off=7, sub_start=2)
        assert slot.encode() == 0b01_0_111_01

    def test_eight_bits_always(self):
        for slot in (
            RangeSlot(1, True, 7, 7),
            RangeSlot(2, True, 7, 6),
            RangeSlot(4, True, 7, 4),
            RangeSlot(zero=True, blk_off=7, dirty=True),
        ):
            assert 0 <= slot.encode() <= 0xFF

    def test_alignment_enforced(self):
        with pytest.raises(MetadataError):
            RangeSlot(cf=2, sub_start=1)
        with pytest.raises(MetadataError):
            RangeSlot(cf=4, sub_start=2)

    def test_invalid_cf(self):
        with pytest.raises(MetadataError):
            RangeSlot(cf=3)

    def test_covers(self):
        slot = RangeSlot(cf=4, blk_off=2, sub_start=4)
        assert slot.covers(2, 5)
        assert not slot.covers(2, 3)
        assert not slot.covers(1, 5)

    def test_zero_covers_whole_block(self):
        slot = RangeSlot(zero=True, blk_off=3)
        for sub in range(8):
            assert slot.covers(3, sub)
        assert slot.sub_blocks == ()

    def test_decode_empty(self):
        assert RangeSlot.decode(EMPTY_SLOT) is None

    def test_decode_rejects_garbage_empty(self):
        with pytest.raises(MetadataError):
            RangeSlot.decode(0b000_00001)

    @given(slot_strategy())
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, slot):
        decoded = RangeSlot.decode(slot.encode())
        assert decoded == slot

    def test_zero_roundtrip(self):
        slot = RangeSlot(zero=True, blk_off=5, dirty=True)
        decoded = RangeSlot.decode(slot.encode())
        assert decoded.zero and decoded.blk_off == 5 and decoded.dirty

    def test_wide_geometry_simulation_only(self):
        slot = RangeSlot(cf=2, blk_off=0, sub_start=10)  # 64 B sub-blocking
        with pytest.raises(MetadataError):
            slot.encode()


class TestStageTagEntry:
    def make_entry(self):
        slots = [None] * 8
        slots[0] = RangeSlot(cf=4, dirty=True, blk_off=0, sub_start=4)
        slots[3] = RangeSlot(cf=1, dirty=False, blk_off=2, sub_start=7)
        slots[5] = RangeSlot(zero=True, blk_off=6)
        return StageTagEntry(tag=0x1ABCD, valid=True, slots=slots, lru=2, fifo=4, miss_count=321)

    def test_entry_is_108_bits(self):
        assert ENTRY_BITS == 108
        value = self.make_entry().encode()
        assert value.bit_length() <= 108

    def test_roundtrip(self):
        entry = self.make_entry()
        decoded = StageTagEntry.decode(entry.encode())
        assert decoded.tag == entry.tag
        assert decoded.valid == entry.valid
        assert decoded.lru == 2 and decoded.fifo == 4
        assert decoded.miss_count == 321
        assert decoded.slots[0] == entry.slots[0]
        assert decoded.slots[3] == entry.slots[3]
        assert decoded.slots[5].zero
        assert decoded.slots[1] is None

    def test_find_sub_block(self):
        entry = self.make_entry()
        assert entry.find_sub_block(0, 6) == 0
        assert entry.find_sub_block(2, 7) == 3
        assert entry.find_sub_block(6, 1) == 5  # zero slot covers all
        assert entry.find_sub_block(0, 0) is None

    def test_slots_of_block_and_occupancy(self):
        entry = self.make_entry()
        assert entry.slots_of_block(0) == [0]
        assert entry.occupancy() == 3
        assert entry.blocks_present() == [0, 2, 6]
        assert entry.free_slot() == 1

    def test_dirty_sub_block_count(self):
        entry = self.make_entry()
        # CF4 dirty range = 4 dirty sub-blocks; zero slot contributes 0.
        assert entry.dirty_sub_block_count() == 4

    def test_tag_overflow_rejected(self):
        entry = StageTagEntry(tag=1 << 21, valid=True)
        with pytest.raises(MetadataError):
            entry.encode()

    def test_misscnt_overflow_rejected(self):
        entry = StageTagEntry(tag=0, miss_count=1 << 16)
        with pytest.raises(MetadataError):
            entry.encode()


class TestStageTagArray:
    def test_paper_storage_budget(self):
        """8192 sets x 4 ways x 14 B = 448 kB (Sec. III-B)."""
        array = StageTagArray(8192, 4)
        assert array.storage_bytes() == 448 * 1024

    def test_lookup_matches_valid_tags_only(self):
        array = StageTagArray(4, 2)
        entry = array.entry(1, 0)
        entry.tag = 42
        entry.valid = True
        assert array.lookup(1, 42) == [(0, entry)]
        assert array.lookup(1, 41) == []
        entry.valid = False
        assert array.lookup(1, 42) == []

    def test_multiple_ways_same_tag(self):
        array = StageTagArray(2, 4)
        for way in (0, 2):
            e = array.entry(0, way)
            e.tag, e.valid = 7, True
        assert [w for w, _ in array.lookup(0, 7)] == [0, 2]

    def test_invalid_way(self):
        array = StageTagArray(1, 2)
        assert array.invalid_way(0) == 0
        array.entry(0, 0).valid = True
        assert array.invalid_way(0) == 1
        array.entry(0, 1).valid = True
        assert array.invalid_way(0) is None

    def test_wide_geometry_entries(self):
        array = StageTagArray(4, 2, slots_per_entry=32)
        assert len(array.entry(0, 0).slots) == 32
