"""Frequent Pattern Compression: pattern coverage and exact round-trips."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.fpc import FpcCompressor


@pytest.fixture(scope="module")
def fpc():
    return FpcCompressor()


def words(*values):
    return b"".join(struct.pack(">I", v & 0xFFFFFFFF) for v in values)


class TestPatterns:
    def test_zero_run_is_tiny(self, fpc):
        data = bytes(64)  # 16 zero words
        result = fpc.compress(data)
        # Two runs of 8 zeros: 2 x (3 prefix + 3 run) = 12 bits.
        assert result.compressed_bits == 12
        assert fpc.decompress(result) == data

    def test_small_signed_values(self, fpc):
        data = words(1, -1, 7, -8)
        result = fpc.compress(data)
        assert result.compressed_bits == 4 * (3 + 4)
        assert fpc.decompress(result) == data

    def test_byte_signed_values(self, fpc):
        data = words(100, -100)
        result = fpc.compress(data)
        assert result.compressed_bits == 2 * (3 + 8)
        assert fpc.decompress(result) == data

    def test_halfword_signed(self, fpc):
        data = words(30000, -30000)
        result = fpc.compress(data)
        assert result.compressed_bits == 2 * (3 + 16)
        assert fpc.decompress(result) == data

    def test_padded_halfword(self, fpc):
        data = words(0xABCD0000)
        result = fpc.compress(data)
        assert result.compressed_bits == 3 + 16
        assert fpc.decompress(result) == data

    def test_two_half_bytes(self, fpc):
        # Each halfword is a sign-extended byte: 0x00MM00NN-ish patterns.
        data = words(0x0042FFC0)  # high half 0x0042 (=66), low 0xFFC0 (=-64)
        result = fpc.compress(data)
        assert result.compressed_bits == 3 + 16
        assert fpc.decompress(result) == data

    def test_repeated_bytes(self, fpc):
        data = words(0x5A5A5A5A)
        result = fpc.compress(data)
        assert result.compressed_bits == 3 + 8
        assert fpc.decompress(result) == data

    def test_uncompressible_word(self, fpc):
        data = words(0x12345678)
        result = fpc.compress(data)
        assert result.compressed_bits == 3 + 32
        assert fpc.decompress(result) == data


class TestBoundaries:
    def test_input_must_be_word_multiple(self, fpc):
        with pytest.raises(ValueError):
            fpc.compress(b"abc")

    def test_zero_run_capped_at_eight(self, fpc):
        data = bytes(4 * 9)  # 9 zero words -> runs of 8 + 1
        result = fpc.compress(data)
        assert fpc.decompress(result) == data
        assert result.compressed_bits == 2 * 6

    def test_result_metadata(self, fpc):
        data = words(0, 0)
        result = fpc.compress(data)
        assert result.algorithm == "fpc"
        assert result.original_size == 8
        assert result.compressed_bytes == (result.compressed_bits + 7) // 8
        assert result.ratio > 1.0


@settings(max_examples=150, deadline=None)
@given(st.binary(min_size=4, max_size=256).filter(lambda b: len(b) % 4 == 0))
def test_roundtrip_arbitrary(data):
    fpc = FpcCompressor()
    assert fpc.decompress(fpc.compress(data)) == data


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.sampled_from([0, 1, -1, 127, -128, 0x7FFF, 0xAB000000, 0x11111111]),
        min_size=1,
        max_size=32,
    )
)
def test_roundtrip_patterned_words(values):
    fpc = FpcCompressor()
    data = words(*values)
    result = fpc.compress(data)
    assert fpc.decompress(result) == data
    # Patterned data should never exceed raw size by more than prefixes.
    assert result.compressed_bits <= len(values) * 35
