"""Baseline designs: Simple, Unison Cache, DICE, Hybrid2."""

import random

import pytest

from repro.baselines import DiceCache, Hybrid2, SimpleCache, UnisonCache
from repro.core.events import AccessCase

from tests.conftest import make_small_config
from tests.test_controller_cases import ScriptedOracle


BLOCK = 2048


class TestSimple:
    def make(self):
        return SimpleCache(make_small_config())

    def test_miss_fills_whole_block(self):
        ctrl = self.make()
        ctrl.access(0, False)
        assert ctrl.devices.slow.stats.get("read_bytes") == BLOCK
        assert ctrl.devices.fast.stats.get("write_bytes") == BLOCK

    def test_whole_block_hits_after_fill(self):
        ctrl = self.make()
        ctrl.access(0, False)
        for line in range(1, 32):
            assert ctrl.access(line * 64, False).case is AccessCase.COMMIT_HIT
        assert ctrl.serve_rate() == pytest.approx(31 / 32)

    def test_dirty_block_written_back_fully(self):
        ctrl = self.make()
        conflict_stride = ctrl.num_sets * BLOCK
        ctrl.access(0, True)
        for i in range(1, ctrl.ways + 1):
            ctrl.access(i * conflict_stride, False)
        assert ctrl.stats.get("dirty_writebacks") == 1
        assert ctrl.devices.slow.stats.get("write_bytes") >= BLOCK


class TestUnison:
    def make(self):
        return UnisonCache(make_small_config())

    def test_first_touch_fetches_default_window(self):
        ctrl = self.make()
        ctrl.access(0, False)
        assert ctrl.stats.get("footprint_fetched_lines") == 4

    def test_footprint_miss_fetches_single_line(self):
        ctrl = self.make()
        ctrl.access(0, False)
        result = ctrl.access(20 * 64, False)  # outside the default window
        assert result.case is AccessCase.STAGE_MISS
        assert ctrl.stats.get("footprint_misses") == 1

    def test_footprint_learned_across_generations(self):
        ctrl = self.make()
        conflict_stride = ctrl.num_sets * BLOCK
        # Touch lines 0 and 20 of page 0, evict it, then re-allocate.
        ctrl.access(0, False)
        ctrl.access(20 * 64, False)
        for i in range(1, ctrl.ways + 1):
            ctrl.access(i * conflict_stride, False)
        ctrl.access(0, False)  # page refill uses learned footprint
        assert ctrl.access(20 * 64, False).case is AccessCase.COMMIT_HIT

    def test_tag_probe_costs_fast_bandwidth(self):
        ctrl = self.make()
        ctrl.access(0, False)
        reads = ctrl.devices.fast.stats.get("read_bytes")
        assert reads >= 64  # in-DRAM tag probe

    def test_dirty_lines_written_back(self):
        ctrl = self.make()
        conflict_stride = ctrl.num_sets * BLOCK
        ctrl.access(0, True)
        for i in range(1, ctrl.ways + 1):
            ctrl.access(i * conflict_stride, False)
        assert ctrl.stats.get("dirty_writebacks") == 1
        # One 64 B line written back (plus the original miss write).
        assert ctrl.devices.slow.stats.get("write_bytes") == 128


class TestDice:
    def make(self, cf=2):
        ctrl = DiceCache(make_small_config(), seed=1)
        ctrl.oracle = ScriptedOracle(cf=cf)
        return ctrl

    def test_compressed_fill_brings_neighbours(self):
        ctrl = self.make(cf=2)
        ctrl.access(0, False)
        assert ctrl.access(64, False).case is AccessCase.COMMIT_HIT

    def test_incompressible_fill_single_line(self):
        ctrl = self.make(cf=1)
        ctrl.access(0, False)
        assert ctrl.access(64, False).case is AccessCase.BLOCK_MISS

    def test_hit_prefetches_co_resident_lines(self):
        ctrl = self.make(cf=4)
        ctrl.access(0, False)
        result = ctrl.access(64, False)
        assert result.case is AccessCase.COMMIT_HIT
        assert len(result.prefetched_lines) == 3

    def test_write_overflow_sheds_lines(self):
        ctrl = self.make(cf=4)
        ctrl.access(0, False)
        ctrl.oracle.overflow_on_write = True
        ctrl.oracle.cf = 1  # writes make the group incompressible
        ctrl.access(0, True)
        assert ctrl.stats.get("write_overflows") == 1

    def test_dirty_writeback_on_eviction(self):
        ctrl = self.make(cf=1)
        ctrl.access(0, True)
        conflict = ctrl.num_sets * 4 * 64  # same set, different group
        ctrl.access(conflict, False)
        assert ctrl.stats.get("dirty_writebacks") == 1


class TestHybrid2:
    def test_configuration_is_paper_shaped(self):
        h = Hybrid2(make_small_config(flat=1.0, fully_associative=True))
        assert h.config.commit.k == 0.0
        assert not h.config.compression_enabled
        assert not h.config.share_physical_blocks
        assert h.config.layout.fully_associative
        assert h.config.layout.flat_fraction == 1.0

    def test_no_compression_ever(self):
        h = Hybrid2(make_small_config(flat=1.0, fully_associative=True))
        rng = random.Random(1)
        total = h.config.layout.fast_capacity * 2
        for _ in range(2000):
            h.access((rng.randrange(total) // 64) * 64, rng.random() < 0.3)
        inner = h._inner
        for set_index in range(inner.stage.num_sets):
            for way in range(inner.stage.ways):
                for slot in inner.stage.entry(set_index, way).slots:
                    assert slot is None or (slot.cf == 1 and not slot.zero)

    def test_duck_type(self):
        h = Hybrid2(make_small_config(flat=1.0, fully_associative=True))
        h.access(0, False)
        assert h.stats.get("accesses") == 1
        assert 0.0 <= h.serve_rate() <= 1.0
        assert h.devices.fast is not None
