"""Fault injection, recovery paths, and crash-safe sweeps (repro.resilience).

The contract under test: every injected fault is either *recovered* —
the run's logical outcome is bit-identical to the fault-free run — or
surfaced as a counted, quarantined degradation. Never a silent wrong
result.
"""

import dataclasses
import json
import os

import pytest

from repro.analysis.experiments import run_cell
from repro.common.config import ResilienceConfig
from repro.common.errors import (
    CheckpointCorruptError,
    ConfigurationError,
    CorruptionError,
)
from repro.core.commit import CommitPolicy
from repro.metadata.remap import RemapEntry
from repro.obs.tracer import load_jsonl
from repro.parallel import clear_trace_cache, plan_cells, run_plan
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    ShadowChecker,
    load_checkpoint,
    parse_fault_spec,
    plan_fingerprint,
    salvage_checkpoint,
    write_checkpoint,
)

from tests.conftest import make_small_config, make_small_sim_config

N_ACCESSES = 2500


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def faulty_config(**kwargs):
    return make_small_config(
        resilience=ResilienceConfig(enabled=True, **kwargs)
    )


def run_baryon(config, n_accesses=N_ACCESSES, workload="YCSB-B"):
    return run_cell(
        workload, "baryon", config, make_small_sim_config(),
        n_accesses=n_accesses, seed=1,
    )


def device_stats(controller):
    return {
        f"{device.name}.{key}": value
        for device in (controller.devices.fast, controller.devices.slow)
        for key, value in device.stats.as_dict().items()
    }


def _without(snapshot, *keys):
    return {k: v for k, v in snapshot.items() if k not in keys}


class TestFaultSpec:
    def test_parse_maps_short_keys(self):
        assert parse_fault_spec("read=1e-3,spike=0.5") == {
            "p_read_transient": 1e-3,
            "p_latency_spike": 0.5,
        }

    @pytest.mark.parametrize("spec", ["bogus=1", "read", "read=x", "", ","])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(spec)

    def test_table_corruption_requires_checker(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(enabled=True, p_table_corruption=1e-3)
        ResilienceConfig(
            enabled=True, p_table_corruption=1e-3, check_invariants=True
        )


class TestFaultInjector:
    def test_certain_fault_fires_and_pause_suppresses(self):
        plan = FaultPlan(p_read_transient=1.0)
        injector = FaultInjector(plan)
        from repro.common.errors import TransientDeviceError

        with pytest.raises(TransientDeviceError):
            injector.on_read("fast")
        injector.paused = True
        assert injector.on_read("fast") == 0.0  # no draw, no raise
        injector.paused = False
        with pytest.raises(TransientDeviceError):
            injector.on_read("fast")
        assert injector.stats.get("injected_read_transient") == 2

    def test_sequences_are_seed_deterministic(self):
        plan = FaultPlan(seed=42, p_latency_spike=0.5)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        seq_a = [a.on_read("slow") for _ in range(64)]
        seq_b = [b.on_read("slow") for _ in range(64)]
        assert seq_a == seq_b
        assert any(seq_a)  # p=0.5 over 64 draws fires w.p. 1 - 2^-64

    def test_sites_draw_independently(self):
        plan = FaultPlan(seed=7, p_latency_spike=0.5)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        # Interleaving draws at another site must not perturb this site.
        seq_a = [a.on_read("slow") for _ in range(32)]
        seq_b = []
        for _ in range(32):
            b.on_write("fast")
            seq_b.append(b.on_read("slow"))
        assert seq_a == seq_b


class TestReproducibility:
    def test_same_fault_plan_is_bit_reproducible(self):
        config = faulty_config(
            p_read_transient=5e-3, p_write_drop=5e-3, p_latency_spike=5e-3,
            p_remap_corruption=3e-3, p_table_corruption=2e-3,
            p_row_glitch=5e-3, check_invariants=True,
        )
        first_result, first = run_baryon(config)
        clear_trace_cache()
        second_result, second = run_baryon(config)
        assert first_result.to_dict() == second_result.to_dict()
        assert first.stats.as_dict() == second.stats.as_dict()
        assert first.faults.stats.as_dict() == second.faults.stats.as_dict()
        assert device_stats(first) == device_stats(second)
        assert first.faults.injected_total() > 0

    def test_different_seed_changes_fault_sequence(self):
        base = dict(p_read_transient=5e-3, p_latency_spike=5e-3)
        _, a = run_baryon(faulty_config(fault_seed=1, **base))
        clear_trace_cache()
        _, b = run_baryon(faulty_config(fault_seed=2, **base))
        assert a.faults.stats.as_dict() != b.faults.stats.as_dict()


class TestTransparentRecovery:
    """Retryable faults must leave the logical outcome bit-identical."""

    def test_retried_faults_do_not_change_results(self):
        clean_result, clean = run_baryon(make_small_config())
        clear_trace_cache()
        faulty_result, faulty = run_baryon(faulty_config(
            p_read_transient=5e-3, p_write_drop=5e-3,
            p_latency_spike=5e-3, p_row_glitch=5e-3,
            max_retries=8,
        ))
        # Retries fire before any device accounting: traffic, energy and
        # every controller counter match the fault-free run exactly.
        assert faulty.stats.as_dict() == clean.stats.as_dict()
        assert device_stats(faulty) == device_stats(clean)
        assert faulty_result.memory_accesses == clean_result.memory_accesses
        assert faulty_result.served_fast == clean_result.served_fast
        assert faulty_result.case_counts == clean_result.case_counts
        # Only time is allowed to differ (backoff + spike penalties).
        assert faulty_result.cycles >= clean_result.cycles
        assert faulty.recovery.stats.get("retries") > 0
        assert faulty.recovery.stats.get("retry_exhausted") == 0


class TestMetadataRecovery:
    def test_corruption_detected_and_repaired(self):
        _, clean = run_baryon(make_small_config(
            resilience=ResilienceConfig(enabled=True, check_invariants=True)
        ))
        clear_trace_cache()
        _, faulty = run_baryon(faulty_config(
            p_remap_corruption=3e-3, p_table_corruption=2e-3,
            check_invariants=True,
        ))
        assert faulty.faults.stats.get("injected_table_corruption") > 0
        assert faulty.checker.stats.get("corruptions_detected") > 0
        assert (faulty.checker.stats.get("entries_repaired")
                == faulty.checker.stats.get("corruptions_detected"))
        assert faulty.recovery.stats.get("remap_cache_repairs") > 0
        # Repair traffic re-probes the remap table; every *logical*
        # controller counter besides that probe count is unchanged.
        assert (_without(faulty.stats.as_dict(), "remap_table_reads")
                == _without(clean.stats.as_dict(), "remap_table_reads"))
        assert faulty.recovery.stats.get("quarantined_supers") == 0


class TestQuarantine:
    def test_exhausted_retries_quarantine_not_crash(self):
        result, controller = run_baryon(faulty_config(
            p_read_transient=5e-3, max_retries=0,
        ))
        recovery = controller.recovery.stats
        assert recovery.get("retry_exhausted") > 0
        assert recovery.get("quarantined_supers") > 0
        assert recovery.get("degraded_transient") > 0
        # Degraded service is counted, and the run still completes (the
        # measured window shifts with timing, so counts are not compared
        # against the fault-free run — that equivalence only holds for
        # *transparent* recovery).
        assert recovery.get("quarantined_serves") > 0
        assert result.memory_accesses > 0
        assert len(controller._quarantined) == recovery.get("quarantined_supers")

    def test_stage_tag_corruption_quarantines(self):
        result, controller = run_baryon(faulty_config(
            p_stage_tag_corruption=2e-3,
        ))
        recovery = controller.recovery.stats
        assert controller.faults.stats.get("injected_stage_tag_corruption") > 0
        assert recovery.get("degraded_corruption") > 0
        assert recovery.get("quarantined_supers") > 0
        assert result.memory_accesses > 0

    def test_commit_policy_vetoes_quarantined_blocks(self):
        policy = CommitPolicy()
        decision = policy.decide(100, 4, 0, 8, 0, quarantined=True)
        assert not decision.commit
        assert decision.benefit == float("-inf")
        assert policy.stats.get("quarantine_vetoes") == 1
        # The same inputs without quarantine would have committed.
        assert policy.decide(100, 4, 0, 8, 0).commit


class TestShadowChecker:
    def test_shadow_mirrors_table_updates(self):
        checker = ShadowChecker()
        entry = RemapEntry(remap=0b1, pointer=1)
        checker.on_set(5, entry)
        assert checker.shadow_entry(5) == entry
        assert checker.shadow_entry(5) is not entry  # defensive copy
        checker.on_clear(5)
        assert not checker.shadow_entry(5).is_remapped

    def test_injected_corruption_returns_shadow_truth(self):
        checker = ShadowChecker()
        truth = RemapEntry(remap=0b11, pointer=2)
        checker.on_set(9, truth)
        repaired = checker.verified_get(9, RemapEntry(), corrupted=True)
        assert repaired == truth
        assert checker.stats.get("corruptions_detected") == 1
        assert checker.stats.get("entries_repaired") == 1

    def test_real_divergence_raises(self):
        checker = ShadowChecker()
        checker.on_set(9, RemapEntry(remap=0b11, pointer=2))
        with pytest.raises(CorruptionError):
            checker.verified_get(9, RemapEntry(remap=0b1, pointer=2))

    def test_checker_runs_clean_on_fault_free_run(self):
        _, controller = run_baryon(make_small_config(
            resilience=ResilienceConfig(enabled=True, check_invariants=True)
        ))
        assert controller.checker.stats.get("commit_checks") > 0


class TestCheckpoint:
    def _fingerprint(self, plan):
        return plan_fingerprint(
            plan, 100, make_small_config(), make_small_sim_config()
        )

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        plan = plan_cells(["YCSB-B"], ["simple"], seed=1)
        fingerprint = self._fingerprint(plan)
        payloads = {0: {"index": 0, "result": {"name": "w"}}}
        write_checkpoint(path, fingerprint, payloads)
        assert load_checkpoint(path, fingerprint) == payloads

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        plan = plan_cells(["YCSB-B"], ["simple"], seed=1)
        write_checkpoint(path, self._fingerprint(plan), {})
        with pytest.raises(ConfigurationError):
            load_checkpoint(path, "different-fingerprint")

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        plan = plan_cells(["YCSB-B"], ["simple"], seed=1)
        fingerprint = self._fingerprint(plan)
        write_checkpoint(path, fingerprint, {0: {"index": 0}})
        with open(path, "r", encoding="utf-8") as fh:
            content = fh.read()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content[: len(content) // 2])
        with pytest.raises(ConfigurationError):
            load_checkpoint(path, fingerprint)

    def test_wrong_magic_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"magic": "something-else", "version": 1}, fh)
        with pytest.raises(ConfigurationError):
            load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_checkpoint(str(tmp_path / "absent.json"))

    def _damaged(self, tmp_path, cells=3):
        """A checkpoint with ``cells`` records whose last line is torn."""
        path = str(tmp_path / "ck.json")
        plan = plan_cells(["YCSB-B"], ["simple"], seed=1)
        fingerprint = self._fingerprint(plan)
        payloads = {
            i: {"index": i, "result": {"name": f"w{i}"}} for i in range(cells)
        }
        write_checkpoint(path, fingerprint, payloads)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        return path, fingerprint, payloads

    def test_torn_tail_is_salvageable_corruption(self, tmp_path):
        """Body damage raises the CheckpointCorruptError subtype (not a
        bare ConfigurationError): the header still vouches for the plan,
        so per-cell salvage is worth attempting."""
        path, fingerprint, _ = self._damaged(tmp_path)
        with pytest.raises(CheckpointCorruptError) as excinfo:
            load_checkpoint(path, fingerprint)
        assert excinfo.value.salvageable
        assert "salvage" in str(excinfo.value)

    def test_salvage_recovers_intact_prefix(self, tmp_path):
        path, fingerprint, payloads = self._damaged(tmp_path, cells=3)
        recovered, report = salvage_checkpoint(path, fingerprint)
        assert recovered == {0: payloads[0], 1: payloads[1]}
        assert report["recovered"] == 2
        assert report["dropped"] >= 1

    def test_digest_mismatch_drops_only_the_bad_cell(self, tmp_path):
        path = str(tmp_path / "ck.json")
        plan = plan_cells(["YCSB-B"], ["simple"], seed=1)
        fingerprint = self._fingerprint(plan)
        payloads = {
            i: {"index": i, "result": {"name": f"w{i}"}} for i in range(3)
        }
        write_checkpoint(path, fingerprint, payloads)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        # Flip a payload character in the middle record: still valid
        # JSON, but the recorded digest no longer matches.
        lines[2] = lines[2].replace('"name": "w1"', '"name": "wX"')
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointCorruptError, match="digest"):
            load_checkpoint(path, fingerprint)
        recovered, report = salvage_checkpoint(path, fingerprint)
        assert sorted(recovered) == [0, 2]
        assert any("digest" in note for note in report["damage"])

    def test_missing_record_vs_header_count_is_corruption(self, tmp_path):
        path = str(tmp_path / "ck.json")
        plan = plan_cells(["YCSB-B"], ["simple"], seed=1)
        fingerprint = self._fingerprint(plan)
        payloads = {
            i: {"index": i, "result": {"name": f"w{i}"}} for i in range(3)
        }
        write_checkpoint(path, fingerprint, payloads)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        del lines[2]  # a whole record vanished; every surviving line parses
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointCorruptError, match="promises"):
            load_checkpoint(path, fingerprint)
        recovered, _ = salvage_checkpoint(path, fingerprint)
        assert sorted(recovered) == [0, 2]

    def test_salvage_refuses_wrong_plan(self, tmp_path):
        path, _, _ = self._damaged(tmp_path)
        with pytest.raises(ConfigurationError, match="different sweep"):
            salvage_checkpoint(path, "some-other-fingerprint")


class TestResume:
    def test_resumed_matrix_reproduces_uninterrupted_run(self, tmp_path):
        config, sim = make_small_config(), make_small_sim_config()
        plan = plan_cells(["YCSB-B"], ["simple", "dice", "baryon"], seed=1)
        baseline = run_plan(plan, config, sim, n_accesses=800, jobs=1)

        # Simulate a crash after two cells: keep a partial checkpoint.
        path = str(tmp_path / "sweep.json")
        clear_trace_cache()
        run_plan(plan, config, sim, n_accesses=800, jobs=1, checkpoint=path)
        fingerprint = plan_fingerprint(plan, 800, config, sim)
        payloads = load_checkpoint(path, fingerprint)
        partial = dict(list(sorted(payloads.items()))[:2])
        write_checkpoint(path, fingerprint, partial)

        clear_trace_cache()
        resumed = run_plan(plan, config, sim, n_accesses=800, jobs=1, resume=path)
        assert resumed.resumed == 2
        assert not resumed.failed
        assert {k: v.to_dict() for k, v in resumed.results.items()} == {
            k: v.to_dict() for k, v in baseline.results.items()
        }
        assert resumed.counters.as_dict() == baseline.counters.as_dict()
        assert resumed.device_counters.as_dict() == baseline.device_counters.as_dict()

    def test_resume_salvages_damaged_checkpoint(self, tmp_path):
        """A torn checkpoint no longer costs the whole sweep: resume
        salvages every digest-verified cell and re-runs only the rest,
        landing on the bit-identical merged outcome."""
        config, sim = make_small_config(), make_small_sim_config()
        plan = plan_cells(["YCSB-B"], ["simple", "dice", "baryon"], seed=1)
        baseline = run_plan(plan, config, sim, n_accesses=800, jobs=1)

        path = str(tmp_path / "sweep.json")
        clear_trace_cache()
        run_plan(plan, config, sim, n_accesses=800, jobs=1, checkpoint=path)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]  # tear the last record
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")

        clear_trace_cache()
        resumed = run_plan(plan, config, sim, n_accesses=800, jobs=1, resume=path)
        assert resumed.salvaged == len(plan) - 1
        assert resumed.resumed == len(plan) - 1
        assert not resumed.failed
        assert resumed.counters.as_dict() == baseline.counters.as_dict()
        orchestration = resumed.orchestration.as_dict()
        assert orchestration["checkpoint_salvaged_cells"] == len(plan) - 1
        assert orchestration["checkpoint_salvage_dropped"] >= 1

    def test_missing_resume_file_starts_fresh(self, tmp_path):
        config, sim = make_small_config(), make_small_sim_config()
        plan = plan_cells(["YCSB-B"], ["simple"], seed=1)
        outcome = run_plan(
            plan, config, sim, n_accesses=400, jobs=1,
            resume=str(tmp_path / "never-written.json"),
        )
        assert outcome.resumed == 0
        assert len(outcome.results) == 1


class TestTraceFileValidation:
    def test_corrupt_trace_line_raises(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"seq":1,"type":"access"}\n{"seq":2,"ty')  # truncated
        with pytest.raises(ConfigurationError):
            load_jsonl(path)

    def test_non_object_line_raises(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("[1,2,3]\n")
        with pytest.raises(ConfigurationError):
            load_jsonl(path)

    def test_valid_headerless_trace_loads(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"seq":1,"type":"access"}\n\n{"seq":2,"type":"fault"}\n')
        events = load_jsonl(path)
        assert [e["seq"] for e in events] == [1, 2]


class TestObservabilityExport:
    def test_fault_and_recovery_metrics_exported(self):
        from repro.obs import MetricsRegistry, collect_run_metrics

        config = faulty_config(
            p_read_transient=5e-3, p_table_corruption=2e-3,
            check_invariants=True,
        )
        _, controller = run_baryon(config)
        registry = collect_run_metrics(MetricsRegistry(), controller)
        text = registry.to_prometheus()
        assert 'repro_fault_total{kind="read_transient"}' in text
        assert "repro_recovery_total{" in text
        assert 'repro_checker_total{event="corruptions_detected"}' in text

    def test_fault_events_traced(self):
        from repro.obs import EventTracer, attach_observability
        from repro.core import BaryonController
        from repro.sim import SystemSimulator
        from repro.workloads import build_workload

        config = faulty_config(p_read_transient=5e-3, max_retries=8)
        controller = BaryonController(config, seed=1)
        tracer = EventTracer(capacity=1 << 16)
        attach_observability(controller, tracer)
        trace = build_workload(
            "YCSB-B", config.layout.fast_capacity,
            n_accesses=N_ACCESSES, seed=1,
        )
        SystemSimulator(controller, make_small_sim_config()).run(trace)
        counts = tracer.counts_by_type()
        assert counts.get("fault", 0) > 0
        assert counts.get("recovery", 0) > 0


class TestConfigGating:
    def test_resilience_off_leaves_controller_unwired(self):
        _, controller = run_baryon(make_small_config())
        assert controller.faults is None
        assert controller.recovery is None
        assert controller.checker is None

    def test_checker_without_faults(self):
        config = make_small_config(
            resilience=ResilienceConfig(enabled=True, check_invariants=True)
        )
        _, controller = run_baryon(config)
        assert controller.faults is None
        assert controller.checker is not None

    def test_disabled_resilience_config_is_inert(self):
        config = make_small_config(resilience=ResilienceConfig(enabled=False))
        _, controller = run_baryon(config)
        assert controller.faults is None
        assert controller.recovery is None
