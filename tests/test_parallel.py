"""The parallel matrix runner: plans, trace reuse, shard merging, and
serial/parallel bit-equivalence."""

import numpy as np
import pytest

from repro.analysis import run_matrix, run_matrix_sharded, run_one
from repro.analysis.experiments import run_cell
from repro.common.stats import CounterGroup
from repro.devices.energy import EnergyReport
from repro.parallel import (
    Cell,
    clear_trace_cache,
    fork_available,
    plan_cells,
    resolve_jobs,
)
from repro.parallel.runner import _cell_trace
from repro.sim.results import SimResult
from repro.workloads import build_workload

from tests.conftest import make_small_config, make_small_sim_config

WORKLOADS = ["YCSB-B", "557.xz_r"]
DESIGNS = ["simple", "dice", "baryon"]
N_ACCESSES = 1200


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestPlan:
    def test_plan_is_deterministic_and_ordered(self):
        a = plan_cells(WORKLOADS, DESIGNS, seed=3)
        b = plan_cells(WORKLOADS, DESIGNS, seed=3)
        assert a == b
        assert [c.index for c in a] == list(range(len(a)))
        # Workload-major: cells sharing a trace are contiguous.
        assert [c.workload for c in a] == ["YCSB-B"] * 3 + ["557.xz_r"] * 3

    def test_single_seed_keys_are_pairs(self):
        for cell in plan_cells(WORKLOADS, DESIGNS, seed=7):
            assert cell.key == (cell.workload, cell.design)
            assert cell.seed == 7

    def test_multi_seed_keys_include_seed(self):
        plan = plan_cells(["YCSB-B"], ["simple"], seeds=[1, 2, 3])
        assert [c.key for c in plan] == [
            ("YCSB-B", "simple", 1),
            ("YCSB-B", "simple", 2),
            ("YCSB-B", "simple", 3),
        ]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            plan_cells(WORKLOADS, DESIGNS, seeds=[])

    def test_trace_key_shared_across_designs(self):
        plan = plan_cells(["YCSB-B"], DESIGNS, seed=5)
        assert len({c.trace_key for c in plan}) == 1


class TestResolveJobs:
    def test_serial_cases(self):
        assert resolve_jobs(1, 10) == 1
        assert resolve_jobs(4, 1) == 1

    def test_clamped_to_cells(self):
        if fork_available():
            assert resolve_jobs(16, 3) == 3


class TestReplayView:
    def test_view_is_immutable_and_identical(self):
        config = make_small_config()
        trace = build_workload(
            "YCSB-B", config.layout.fast_capacity, n_accesses=500, seed=1
        )
        view = trace.replay_view()
        assert np.array_equal(view.addrs, trace.addrs)
        assert np.array_equal(view.writes, trace.writes)
        assert not view.addrs.flags.writeable
        with pytest.raises(ValueError):
            view.addrs[0] = 0
        # The original stays writable and untouched.
        assert trace.addrs.flags.writeable

    def test_per_design_streams_are_identical(self):
        """Every design of one workload replays the exact same stream."""
        config = make_small_config()
        plan = plan_cells(["YCSB-B"], DESIGNS, seed=2)
        streams = []
        for cell in plan:
            view, generated = _cell_trace(cell, config, 400)
            assert generated == (cell is plan[0])
            streams.append(view)
        first = streams[0]
        for other in streams[1:]:
            assert np.array_equal(first.addrs, other.addrs)
            assert np.array_equal(first.writes, other.writes)
            assert np.array_equal(first.igaps, other.igaps)
            assert np.array_equal(first.cores, other.cores)

    def test_injected_trace_matches_generated(self):
        """run_one with a replay view equals run_one regenerating."""
        config, sim = make_small_config(), make_small_sim_config()
        trace = build_workload(
            "YCSB-B", config.layout.fast_capacity, n_accesses=800, seed=1
        )
        injected = run_one(
            "YCSB-B", "baryon", config, sim,
            n_accesses=800, seed=1, trace=trace.replay_view(),
        )
        regenerated = run_one(
            "YCSB-B", "baryon", config, sim, n_accesses=800, seed=1
        )
        assert injected.to_dict() == regenerated.to_dict()


class TestSimResultSerialization:
    def test_round_trip(self):
        result = SimResult(
            name="w", design="d", instructions=10, cycles=5.0,
            memory_accesses=4, served_fast=2,
            case_counts={"hit_fast": 3},
            energy=EnergyReport(1.0, 2.0, 3.0),
            extra={"llc_miss_rate": 0.5},
        )
        clone = SimResult.from_dict(result.to_dict())
        assert clone == result
        assert clone.energy.total_j == result.energy.total_j

    def test_round_trip_without_energy(self):
        result = SimResult(name="w", design="d")
        assert SimResult.from_dict(result.to_dict()) == result


class TestEquivalence:
    def test_serial_matches_legacy_per_cell(self):
        """Trace reuse must not change any result vs. per-cell runs."""
        config, sim = make_small_config(), make_small_sim_config()
        matrix = run_matrix(
            WORKLOADS, DESIGNS, config, sim, n_accesses=N_ACCESSES, jobs=1
        )
        for (workload, design), result in matrix.items():
            legacy = run_one(
                workload, design, config, sim, n_accesses=N_ACCESSES, seed=1
            )
            assert result.to_dict() == legacy.to_dict()

    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_parallel_matches_serial_bit_identical(self):
        """The ISSUE's 2-workload x 3-design equivalence check."""
        config, sim = make_small_config(), make_small_sim_config()
        serial = run_matrix(
            WORKLOADS, DESIGNS, config, sim, n_accesses=N_ACCESSES, jobs=1
        )
        clear_trace_cache()
        parallel = run_matrix(
            WORKLOADS, DESIGNS, config, sim, n_accesses=N_ACCESSES, jobs=4
        )
        assert set(serial) == set(parallel)
        for key in serial:
            assert serial[key].to_dict() == parallel[key].to_dict()

    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_parallel_merged_counters_match_serial(self):
        config, sim = make_small_config(), make_small_sim_config()
        serial = run_matrix_sharded(
            ["YCSB-B"], ["simple", "baryon"], config, sim,
            n_accesses=N_ACCESSES, jobs=1,
        )
        clear_trace_cache()
        parallel = run_matrix_sharded(
            ["YCSB-B"], ["simple", "baryon"], config, sim,
            n_accesses=N_ACCESSES, jobs=2,
        )
        assert serial.counters.as_dict() == parallel.counters.as_dict()
        assert serial.device_counters.as_dict() == parallel.device_counters.as_dict()
        assert serial.serve.hits == parallel.serve.hits
        assert serial.serve.total == parallel.serve.total


class TestShardMerging:
    def test_merged_counters_equal_manual_fold(self):
        config, sim = make_small_config(), make_small_sim_config()
        outcome = run_matrix_sharded(
            ["YCSB-B"], ["simple", "baryon"], config, sim,
            n_accesses=N_ACCESSES, jobs=1,
        )
        expected = CounterGroup("expected")
        for design in ["simple", "baryon"]:
            _, controller = run_cell(
                "YCSB-B", design, config, sim,
                n_accesses=N_ACCESSES, seed=1,
            )
            inner = getattr(controller, "_inner", controller)
            expected.merge(inner.stats)
        assert outcome.counters.as_dict() == expected.as_dict()

    def test_serve_ratio_merges_cell_results(self):
        config, sim = make_small_config(), make_small_sim_config()
        outcome = run_matrix_sharded(
            WORKLOADS, ["simple", "baryon"], config, sim,
            n_accesses=N_ACCESSES, jobs=1,
        )
        assert outcome.serve.hits == sum(
            r.served_fast for r in outcome.results.values()
        )
        assert outcome.serve.total == sum(
            r.memory_accesses for r in outcome.results.values()
        )
        assert 0.0 < outcome.serve.rate <= 1.0

    def test_traces_generated_once_per_workload(self):
        config, sim = make_small_config(), make_small_sim_config()
        outcome = run_matrix_sharded(
            WORKLOADS, DESIGNS, config, sim, n_accesses=N_ACCESSES, jobs=1
        )
        assert outcome.cells == len(WORKLOADS) * len(DESIGNS)
        assert outcome.traces_generated == len(WORKLOADS)


class TestMultiSeed:
    def test_seed_axis_keys_and_distinct_streams(self):
        config, sim = make_small_config(), make_small_sim_config()
        matrix = run_matrix(
            ["YCSB-B"], ["baryon"], config, sim,
            n_accesses=800, seeds=[1, 2],
        )
        assert set(matrix) == {("YCSB-B", "baryon", 1), ("YCSB-B", "baryon", 2)}
        # Different seeds must actually produce different streams/results.
        assert (matrix[("YCSB-B", "baryon", 1)].to_dict()
                != matrix[("YCSB-B", "baryon", 2)].to_dict())

    def test_seeded_cell_matches_run_one(self):
        config, sim = make_small_config(), make_small_sim_config()
        matrix = run_matrix(
            ["YCSB-B"], ["baryon"], config, sim, n_accesses=800, seeds=[5]
        )
        direct = run_one("YCSB-B", "baryon", config, sim, n_accesses=800, seed=5)
        assert matrix[("YCSB-B", "baryon", 5)].to_dict() == direct.to_dict()


class TestCellDataclass:
    def test_cell_is_hashable_and_frozen(self):
        cell = Cell("w", "d", 1, 0)
        assert hash(cell) is not None
        with pytest.raises(AttributeError):
            cell.seed = 2


class TestWorkerFailure:
    """A failing cell becomes a tagged error record, never a poisoned fold."""

    @staticmethod
    def _explode_on_dice(monkeypatch):
        import repro.parallel.runner as runner

        original = runner._execute_cell

        def explode(cell, config, sim_config, n_accesses, attempt=1):
            if cell.design == "dice":
                raise ValueError("synthetic mid-cell failure")
            return original(cell, config, sim_config, n_accesses, attempt)

        monkeypatch.setattr(runner, "_execute_cell", explode)

    def test_serial_failure_reported_with_traceback(self, monkeypatch):
        self._explode_on_dice(monkeypatch)
        config, sim = make_small_config(), make_small_sim_config()
        outcome = run_matrix_sharded(
            ["YCSB-B"], ["simple", "dice", "baryon"], config, sim,
            n_accesses=600, jobs=1,
        )
        assert set(outcome.results) == {("YCSB-B", "simple"), ("YCSB-B", "baryon")}
        error = outcome.failed[("YCSB-B", "dice")]
        assert error["type"] == "ValueError"
        assert "synthetic mid-cell failure" in error["message"]
        assert "ValueError" in error["traceback"]
        assert error["attempt"] == 2
        assert outcome.retries == 1  # one bounded requeue before giving up

    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_pool_failure_reported_with_traceback(self, monkeypatch):
        self._explode_on_dice(monkeypatch)
        config, sim = make_small_config(), make_small_sim_config()
        outcome = run_matrix_sharded(
            ["YCSB-B"], ["simple", "dice", "baryon"], config, sim,
            n_accesses=600, jobs=2,
        )
        assert set(outcome.results) == {("YCSB-B", "simple"), ("YCSB-B", "baryon")}
        error = outcome.failed[("YCSB-B", "dice")]
        assert error["type"] == "ValueError"
        assert "ValueError" in error["traceback"]

    def test_run_matrix_raises_cell_execution_error(self, monkeypatch):
        from repro.common.errors import CellExecutionError

        self._explode_on_dice(monkeypatch)
        config, sim = make_small_config(), make_small_sim_config()
        with pytest.raises(CellExecutionError) as excinfo:
            run_matrix(["YCSB-B"], ["dice"], config, sim, n_accesses=600)
        assert excinfo.value.cell == ("YCSB-B", "dice")
        assert "ValueError" in excinfo.value.traceback_text

    def test_transient_failure_recovered_by_retry(self, monkeypatch):
        """A cell failing only on attempt 1 succeeds on the requeue."""
        import repro.parallel.runner as runner

        original = runner._execute_cell

        def flaky(cell, config, sim_config, n_accesses, attempt=1):
            if cell.design == "dice" and attempt == 1:
                raise ValueError("first-attempt-only failure")
            return original(cell, config, sim_config, n_accesses, attempt)

        monkeypatch.setattr(runner, "_execute_cell", flaky)
        config, sim = make_small_config(), make_small_sim_config()
        outcome = run_matrix_sharded(
            ["YCSB-B"], ["simple", "dice"], config, sim,
            n_accesses=600, jobs=1,
        )
        assert not outcome.failed
        assert outcome.retries == 1
        clear_trace_cache()
        clean = run_matrix_sharded(
            ["YCSB-B"], ["simple", "dice"], config, sim,
            n_accesses=600, jobs=1,
        )
        assert {k: v.to_dict() for k, v in outcome.results.items()} == {
            k: v.to_dict() for k, v in clean.results.items()
        }


class TestKilledWorker:
    @pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
    def test_sigkilled_worker_cell_requeued_and_bit_identical(self, monkeypatch):
        """A worker SIGKILLed mid-cell: the pool silently loses the task,
        the deadline detects it, and the requeued attempt reproduces the
        fault-free matrix exactly."""
        import os
        import signal

        import repro.parallel.runner as runner

        config, sim = make_small_config(), make_small_sim_config()
        clean = run_matrix_sharded(
            ["YCSB-B"], ["simple", "dice", "baryon"], config, sim,
            n_accesses=600, jobs=1,
        )

        original = runner._execute_cell

        def die_once(cell, config, sim_config, n_accesses, attempt=1):
            if cell.design == "dice" and attempt == 1:
                os.kill(os.getpid(), signal.SIGKILL)
            return original(cell, config, sim_config, n_accesses, attempt)

        monkeypatch.setattr(runner, "_execute_cell", die_once)
        clear_trace_cache()
        outcome = run_matrix_sharded(
            ["YCSB-B"], ["simple", "dice", "baryon"], config, sim,
            n_accesses=600, jobs=2, cell_timeout_s=5.0, max_attempts=2,
        )
        assert not outcome.failed
        assert outcome.retries >= 1
        assert {k: v.to_dict() for k, v in outcome.results.items()} == {
            k: v.to_dict() for k, v in clean.results.items()
        }
        assert outcome.counters.as_dict() == clean.counters.as_dict()
