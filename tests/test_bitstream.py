"""Bit-level writer/reader used by the compressors."""

import pytest
from hypothesis import given, strategies as st

from repro.compression.bitstream import BitReader, BitWriter, fits_signed, sign_extend


class TestBitWriter:
    def test_empty(self):
        writer = BitWriter()
        assert writer.bit_length == 0
        assert writer.getvalue() == b""

    def test_single_bits(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1):
            writer.write(bit, 1)
        assert writer.bit_length == 4
        assert writer.getvalue() == bytes([0b1011_0000])

    def test_msb_first_packing(self):
        writer = BitWriter()
        writer.write(0xAB, 8)
        writer.write(0x3, 2)
        assert writer.getvalue() == bytes([0xAB, 0b11_000000])

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(4, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 4)

    def test_zero_width_is_noop(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.bit_length == 0


class TestBitReader:
    def test_reads_back_in_order(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0x7F, 7)
        reader = BitReader(writer.getvalue())
        assert reader.read(3) == 0b101
        assert reader.read(7) == 0x7F

    def test_exhaustion_raises(self):
        reader = BitReader(b"\xff")
        reader.read(8)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_position_tracks(self):
        reader = BitReader(b"\x00\x00")
        reader.read(5)
        assert reader.position == 5


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=48), st.integers(min_value=0)), max_size=40))
def test_roundtrip_property(fields):
    """Any sequence of (width, value) fields reads back exactly."""
    fields = [(w, v & ((1 << w) - 1)) for w, v in fields]
    writer = BitWriter()
    for width, value in fields:
        writer.write(value, width)
    reader = BitReader(writer.getvalue())
    for width, value in fields:
        assert reader.read(width) == value


class TestSignHelpers:
    @pytest.mark.parametrize(
        "value,bits,expected",
        [(0xF, 4, -1), (0x7, 4, 7), (0x8, 4, -8), (0xFF, 8, -1), (0x00, 8, 0)],
    )
    def test_sign_extend(self, value, bits, expected):
        assert sign_extend(value, bits) == expected

    @pytest.mark.parametrize(
        "value,bits,expected",
        [(7, 4, True), (8, 4, False), (-8, 4, True), (-9, 4, False), (0, 1, True)],
    )
    def test_fits_signed(self, value, bits, expected):
        assert fits_signed(value, bits) is expected

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_sign_extend_inverts_masking(self, value):
        assert sign_extend(value & 0xFFFFFFFF, 32) == value
