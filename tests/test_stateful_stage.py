"""Hypothesis stateful testing of the stage area's replacement metadata.

Random interleavings of allocate / touch / insert / remove / FIFO-evict /
invalidate must preserve the invariants the controller relies on:

* LRU ranks are a permutation of 0..valid-1 (exactly representable in the
  entry's 3 bits);
* slot occupancy never exceeds the physical block;
* Rule 2 alignment of every resident range;
* FIFO victims are always occupied slots.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.common.config import Geometry, StageConfig
from repro.core.stage_area import StageArea
from repro.metadata.stage_tag import RangeSlot

KB = 1024


class StageAreaMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        # 4 sets x 4 ways; operations target set 0 to maximize contention.
        self.stage = StageArea(
            StageConfig(size_bytes=32 * KB, ways=4, aging_period_accesses=32),
            Geometry(),
        )
        self.set_index = 0
        self.next_super = 0

    def _valid_ways(self):
        return [
            w
            for w in range(self.stage.ways)
            if self.stage.entry(self.set_index, w).valid
        ]

    @rule()
    def allocate(self):
        super_id = self.next_super * self.stage.num_sets + self.set_index
        self.next_super += 1
        result = self.stage.allocate(super_id)
        if result is not None:
            assert result[0] == self.set_index

    @precondition(lambda self: self._valid_ways())
    @rule(data=st.data())
    def touch(self, data):
        way = data.draw(st.sampled_from(self._valid_ways()))
        self.stage.touch(self.set_index, way)
        assert self.stage.mru_way(self.set_index) == way

    @precondition(lambda self: self._valid_ways())
    @rule(data=st.data(), cf=st.sampled_from([1, 2, 4]), blk=st.integers(0, 7), pos=st.integers(0, 7))
    def insert(self, data, cf, blk, pos):
        way = data.draw(st.sampled_from(self._valid_ways()))
        entry = self.stage.entry(self.set_index, way)
        if entry.free_slot() is None:
            return
        start = (pos // cf) * cf % 8
        start = (start // cf) * cf
        slot = RangeSlot(cf=cf, blk_off=blk, sub_start=start)
        self.stage.insert_range(self.set_index, way, slot)

    @precondition(lambda self: any(
        self.stage.entry(0, w).valid and self.stage.entry(0, w).occupancy()
        for w in range(4)
    ))
    @rule(data=st.data())
    def fifo_evict(self, data):
        candidates = [
            w
            for w in self._valid_ways()
            if self.stage.entry(self.set_index, w).occupancy()
        ]
        way = data.draw(st.sampled_from(candidates))
        slot_index = self.stage.fifo_victim_slot(self.set_index, way)
        assert self.stage.entry(self.set_index, way).slots[slot_index] is not None
        self.stage.remove_slot(self.set_index, way, slot_index)

    @precondition(lambda self: self._valid_ways())
    @rule(data=st.data())
    def record_miss(self, data):
        way = data.draw(st.sampled_from(self._valid_ways()))
        self.stage.record_block_miss(self.set_index, way)
        self.stage.record_set_access(self.set_index)

    @precondition(lambda self: self._valid_ways())
    @rule(data=st.data())
    def invalidate(self, data):
        way = data.draw(st.sampled_from(self._valid_ways()))
        self.stage.invalidate(self.set_index, way)

    @invariant()
    def lru_ranks_dense(self):
        ranks = sorted(
            self.stage.entry(self.set_index, w).lru for w in self._valid_ways()
        )
        assert ranks == list(range(len(ranks)))
        assert all(0 <= r < 8 for r in ranks)  # 3-bit representable

    @invariant()
    def slots_well_formed(self):
        for way in range(self.stage.ways):
            entry = self.stage.entry(self.set_index, way)
            occupied = 0
            for slot in entry.slots:
                if slot is None:
                    continue
                occupied += 1
                if not slot.zero:
                    assert slot.sub_start % slot.cf == 0
            assert occupied <= len(entry.slots)
            assert 0 <= entry.fifo < len(entry.slots)

    @invariant()
    def counters_bounded(self):
        cap = self.stage.config.miss_counter_max()
        assert 0 <= self.stage.mru_miss_cnt[self.set_index] <= cap
        for way in range(self.stage.ways):
            assert 0 <= self.stage.entry(self.set_index, way).miss_count <= cap


TestStageAreaStateMachine = StageAreaMachine.TestCase
TestStageAreaStateMachine.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
