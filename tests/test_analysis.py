"""Experiment harness and report formatting."""

import pytest

from repro.analysis import (
    DESIGNS,
    build_controller,
    format_matrix,
    format_series,
    geomean_row,
    normalize_to,
    run_matrix,
    run_one,
)
from repro.baselines import DiceCache, Hybrid2, SimpleCache, UnisonCache
from repro.common.errors import ConfigurationError
from repro.core import BaryonController
from repro.sim.results import SimResult

from tests.conftest import make_small_config, make_small_sim_config


class TestBuildController:
    def test_all_designs_instantiate(self):
        config = make_small_config()
        expected = {
            "simple": SimpleCache,
            "unison": UnisonCache,
            "dice": DiceCache,
            "baryon": BaryonController,
            "baryon-64b": BaryonController,
            "hybrid2": Hybrid2,
            "baryon-fa": BaryonController,
        }
        for design in DESIGNS:
            ctrl = build_controller(design, config)
            assert isinstance(ctrl, expected[design])

    def test_baryon_64b_geometry(self):
        ctrl = build_controller("baryon-64b", make_small_config())
        assert ctrl.geometry.sub_block_size == 64

    def test_flat_designs_derived(self):
        ctrl = build_controller("baryon-fa", make_small_config())
        assert ctrl.config.layout.fully_associative
        # Flat space plus a provisioned cache section (see _flat_variant).
        assert 0.5 <= ctrl.config.layout.flat_fraction < 1.0

    def test_unknown_design(self):
        with pytest.raises(ConfigurationError):
            build_controller("mystery", make_small_config())


class TestRunners:
    def test_run_one(self):
        result = run_one(
            "YCSB-B",
            "baryon",
            make_small_config(),
            make_small_sim_config(),
            n_accesses=2500,
        )
        assert result.name == "YCSB-B"
        assert result.design in ("baryon", "BaryonController")
        assert result.ipc > 0

    def test_run_matrix_shape(self):
        results = run_matrix(
            ["YCSB-B"],
            ["simple", "baryon"],
            make_small_config(),
            make_small_sim_config(),
            n_accesses=1500,
        )
        assert set(results) == {("YCSB-B", "simple"), ("YCSB-B", "baryon")}


def fake_matrix():
    def res(ipc, serve):
        r = SimResult(instructions=1000, cycles=1000.0 / ipc)
        r.served_fast = int(serve * 100)
        r.memory_accesses = 100
        return r

    return {
        ("w1", "simple"): res(1.0, 0.5),
        ("w1", "baryon"): res(2.0, 0.8),
        ("w2", "simple"): res(2.0, 0.6),
        ("w2", "baryon"): res(2.0, 0.9),
    }


class TestReport:
    def test_normalize(self):
        norm = normalize_to(fake_matrix(), "simple")
        assert norm[("w1", "baryon")] == pytest.approx(2.0)
        assert norm[("w2", "baryon")] == pytest.approx(1.0)
        assert norm[("w1", "simple")] == pytest.approx(1.0)

    def test_geomean(self):
        norm = normalize_to(fake_matrix(), "simple")
        row = geomean_row(norm, ["simple", "baryon"])
        assert row["baryon"] == pytest.approx(2.0 ** 0.5)
        assert row["simple"] == pytest.approx(1.0)

    def test_format_matrix_normalized(self):
        text = format_matrix(
            fake_matrix(), ["w1", "w2"], ["simple", "baryon"],
            baseline="simple", title="Fig. X",
        )
        assert "Fig. X" in text
        assert "geomean" in text
        assert "2.00" in text

    def test_format_matrix_raw_metric(self):
        text = format_matrix(
            fake_matrix(), ["w1", "w2"], ["simple", "baryon"], metric="serve_rate"
        )
        assert "0.80" in text

    def test_format_series(self):
        text = format_series("sweep", [("8MB", 0.95), ("64MB", 1.0)])
        assert "8MB" in text and "0.950" in text
