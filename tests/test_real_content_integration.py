"""Controller invariants under the real-content (FPC/BDI) oracle.

The synthetic oracle is calibrated against the real compressors; this file
closes the loop the other way: the full controller state machine is fuzzed
with every compression decision made by actually compressing bytes, and
the structural invariants must still hold.
"""

import random

import pytest

from repro.core import BaryonController
from repro.workloads.datagen import ContentBackedCompressibility, ContentStore

from tests.conftest import make_small_config
from tests.test_controller_invariants import check_invariants


@pytest.mark.parametrize("pattern", ["zeros", "small_ints", "deltas", "random"])
def test_invariants_with_real_compression(pattern):
    config = make_small_config(fast_mb=2, stage_kb=128)
    ctrl = BaryonController(config, seed=2)
    store = ContentStore(pattern=pattern, seed=4)
    ctrl.oracle = ContentBackedCompressibility(store, write_noise=0.15, seed=4)
    rng = random.Random(6)
    footprint = 4 * config.layout.fast_capacity
    for _ in range(800):
        addr = (rng.randrange(footprint) // 64) * 64
        if rng.random() < 0.5:
            addr = (rng.randrange(footprint // 8) // 64) * 64
        ctrl.access(addr, rng.random() < 0.3)
    check_invariants(ctrl)


def test_zero_pattern_stages_zero_blocks_for_free():
    config = make_small_config(fast_mb=2, stage_kb=128)
    ctrl = BaryonController(config, seed=2)
    ctrl.oracle = ContentBackedCompressibility(
        ContentStore(pattern="zeros", seed=1), write_noise=0.0
    )
    for block in range(16):
        ctrl.access(block * 2048, False)
    assert ctrl.stats.get("zero_block_stages") == 16
    assert ctrl.devices.slow.stats.get("read_bytes") == 0


def test_random_pattern_never_compresses():
    config = make_small_config(fast_mb=2, stage_kb=128)
    ctrl = BaryonController(config, seed=2)
    ctrl.oracle = ContentBackedCompressibility(
        ContentStore(pattern="random", seed=1), write_noise=0.0
    )
    rng = random.Random(3)
    for _ in range(400):
        addr = (rng.randrange(2 << 20) // 64) * 64
        ctrl.access(addr, False)
    for set_index in range(ctrl.stage.num_sets):
        for way in range(ctrl.stage.ways):
            for slot in ctrl.stage.entry(set_index, way).slots:
                assert slot is None or (slot.cf == 1 and not slot.zero)


def test_compressible_pattern_forms_wide_ranges():
    config = make_small_config(fast_mb=2, stage_kb=128)
    ctrl = BaryonController(config, seed=2)
    ctrl.oracle = ContentBackedCompressibility(
        ContentStore(pattern="small_ints", seed=1), write_noise=0.0
    )
    rng = random.Random(3)
    for _ in range(400):
        addr = (rng.randrange(2 << 20) // 64) * 64
        ctrl.access(addr, False)
    widths = [
        slot.cf
        for set_index in range(ctrl.stage.num_sets)
        for way in range(ctrl.stage.ways)
        for slot in ctrl.stage.entry(set_index, way).slots
        if slot is not None and not slot.zero
    ]
    assert widths and max(widths) >= 2
