"""Batched hot path vs the scalar reference loop, and window bugfixes.

The batched loop in :class:`repro.sim.system.SystemSimulator` must be a
pure speed optimization: every :class:`~repro.sim.results.SimResult`
counter — including the float ``cycles`` accumulator — must match the
scalar reference loop bit for bit, and the differential content oracle
must reach the same verdict either way. The windowing tests pin the
measurement-window semantics of energy and ``extra``: on a stationary
trace the per-access measured stats must not depend on the warmup
fraction.
"""

import dataclasses
import random

import numpy as np
import pytest

from repro.common.config import CacheGeometry, HierarchyConfig, SimulationConfig
from repro.core import BaryonController
from repro.sim import SystemSimulator
from repro.validation import ContentBackedController, generate_trace, make_tiny_config
from repro.workloads import StreamWorkload, ZipfWorkload
from repro.workloads.base import Trace

from tests.conftest import KB, make_small_config, make_small_sim_config


def _make_trace(workload_cls, config, n, seed, **wl_kwargs):
    return workload_cls(
        "wl", 4 * config.layout.fast_capacity, seed=seed, **wl_kwargs
    ).generate(n)


def _run(workload_cls, *, scalar, n=3000, seed=2, **wl_kwargs):
    config = make_small_config()
    sim_config = make_small_sim_config()
    trace = _make_trace(workload_cls, config, n, seed, **wl_kwargs)
    ctrl = BaryonController(config, seed=seed)
    trace.apply_compressibility(ctrl.oracle)
    sim = SystemSimulator(ctrl, sim_config)
    return sim.run(trace, "wl", "baryon", scalar=scalar)


class TestBatchedEqualsScalar:
    @pytest.mark.parametrize("workload_cls", [ZipfWorkload, StreamWorkload])
    def test_simresult_bit_identical(self, workload_cls):
        """Every SimResult field, cycles included, matches bit for bit."""
        ref = _run(workload_cls, scalar=True)
        fast = _run(workload_cls, scalar=False)
        assert fast.to_dict() == ref.to_dict()
        assert fast.cycles == ref.cycles  # exact float equality, no tolerance

    def test_empty_and_tiny_traces(self):
        config = make_small_config()
        for n in (0, 1, 3):
            results = []
            for scalar in (True, False):
                trace = _make_trace(ZipfWorkload, config, n, seed=5)
                ctrl = BaryonController(config, seed=5)
                trace.apply_compressibility(ctrl.oracle)
                sim = SystemSimulator(ctrl, make_small_sim_config())
                results.append(sim.run(trace, scalar=scalar).to_dict())
            assert results[0] == results[1]

    def test_content_oracle_verdict_identical(self):
        """The differential content oracle sees the same access stream and
        serves the same read values under either loop."""
        config = make_tiny_config()
        records = generate_trace(random.Random(11), config, 800)
        n = len(records)
        trace = Trace(
            name="oracle",
            addrs=np.asarray([a for a, _ in records], dtype=np.uint64),
            writes=np.asarray([w for _, w in records], dtype=bool),
            igaps=np.zeros(n, dtype=np.uint32),
            cores=np.zeros(n, dtype=np.uint8),
        )
        fingerprints = []
        for scalar in (True, False):
            controller = ContentBackedController(config, seed=11)
            sim = SystemSimulator(controller, make_small_sim_config())
            result = sim.run(trace, scalar=scalar)
            fingerprints.append(
                (
                    controller.served_reads,
                    controller.vstats.as_dict(),
                    result.to_dict(),
                )
            )
        assert fingerprints[0] == fingerprints[1]


class TestColumnarEquivalence:
    """The columnar arena must stay bit-exact with the object state."""

    def test_columnar_verifies_after_every_mutation(self):
        """Drive a movement-heavy tiny trace access by access, verifying
        the columnar arena after every access — so every controller
        mutation site (stage insert, commit, eviction, remap-cache
        repair) is checked the moment it happens, not just at the end."""
        config = make_tiny_config()
        records = generate_trace(random.Random(21), config, 700)
        ctrl = BaryonController(config, seed=21)
        now = 0.0
        for addr, is_write in records:
            mem = ctrl.access(addr, is_write, now)
            if not is_write:
                now += mem.latency_cycles
            ctrl.columnar.verify()
        # The tiny config forces constant movement: all mutation sites
        # actually fired inside the verified window.
        assert ctrl.stats.get("commits") > 0
        assert ctrl.stage.stats.get("allocations") > 0
        assert ctrl.stage.stats.get("invalidations") > 0
        # The repair path (normally fault-triggered) keeps the columnar
        # occupancy column exact too.
        for way in range(ctrl.remap_cache.ways + 1):
            ctrl.remap_cache.repair(way * ctrl.remap_cache.num_sets)
            ctrl.columnar.verify()

    def test_random_scalar_batched_interleaving(self):
        """Flip between the scalar ``access`` call and the deferred-batch
        seam at random mid-run; the final counters and clock must match
        the all-scalar replay bit for bit."""
        config = make_tiny_config()
        records = generate_trace(random.Random(31), config, 900)
        mlp = 4.0

        ref = BaryonController(config, seed=31)
        cycles = 0.0
        for addr, is_write in records:
            mem = ref.access(addr, is_write, cycles)
            if not is_write:
                cycles += mem.latency_cycles / mlp

        mixed = BaryonController(config, seed=31)
        assert mixed.supports_batching
        rng = random.Random(77)
        b_cycles = 0.0
        ops = []
        deferred_used = 0
        for addr, is_write in records:
            op = (
                mixed.access_deferred(addr, is_write)
                if rng.random() < 0.6 else None
            )
            if op is not None:
                ops.append(op)
                deferred_used += 1
                continue
            if ops:
                b_cycles = mixed.access_batch(ops, b_cycles, mlp)
                ops.clear()
            mem = mixed.access(addr, is_write, b_cycles)
            if not is_write:
                b_cycles += mem.latency_cycles / mlp
        if ops:
            b_cycles = mixed.access_batch(ops, b_cycles, mlp)
        assert deferred_used > 0
        assert b_cycles == cycles  # exact float equality, no tolerance
        assert mixed.stats.as_dict() == ref.stats.as_dict()
        assert (mixed.devices.fast.stats.as_dict()
                == ref.devices.fast.stats.as_dict())
        assert (mixed.devices.slow.stats.as_dict()
                == ref.devices.slow.stats.as_dict())
        assert (mixed.remap_cache.stats.as_dict()
                == ref.remap_cache.stats.as_dict())
        mixed.columnar.verify()


class TestVectorizedClassifier:
    """The bulk-gather classifier + inline server vs the scalar replay."""

    @pytest.mark.parametrize("seed", [3, 17, 29, 41])
    def test_random_chunks_and_interleavings_bit_identical(self, seed):
        """The fuzzer's classifier twin under randomized gather chunks
        and forced mid-run flush boundaries; raises on any divergence."""
        from repro.validation.fuzz import run_classified_case

        config_kwargs = {}
        records = generate_trace(
            random.Random(seed), make_tiny_config(**config_kwargs), 900
        )
        assert run_classified_case(
            config_kwargs, records, seed, random.Random(seed * 7)
        )

    def test_single_op_chunks_force_decline_boundaries(self):
        """chunk=1 puts a gather boundary on every op, so every decline
        sits on a chunk edge; state must still match the scalar twin."""
        from repro.core.columnar import CLS_DECLINE_STAGING_FETCH, DECLINE_REASONS

        config = make_tiny_config()
        records = generate_trace(random.Random(53), config, 900)
        mlp = 4.0

        ref = BaryonController(config, seed=53)
        cycles = 0.0
        for addr, is_write in records:
            mem = ref.access(addr, is_write, cycles)
            if not is_write:
                cycles += mem.latency_cycles / mlp

        vec = BaryonController(make_tiny_config(), seed=53)
        addrs = np.asarray([a for a, _ in records], dtype=np.int64)
        writes = np.asarray([w for _, w in records], dtype=np.bool_)
        classifier = vec.make_run_classifier(addrs, writes)
        assert classifier is not None
        classifier.chunk = 1
        serve, server_flush, batch = vec.make_deferred_server(
            classifier.dirty_blocks
        )
        declines = vec.deferred_declines
        sf_code = CLS_DECLINE_STAGING_FETCH
        dirty = classifier.dirty_blocks
        block_size = classifier.block_size
        b_cycles = 0.0
        ops = []
        served = declined = 0
        for i, (addr, is_write) in enumerate(records):
            codes, auxes = classifier.classify(i, i + 1)
            code = codes[0]
            if code > 0:
                op = serve(addr, is_write, code, auxes[0])
            elif code == 0 or code == sf_code or addr // block_size in dirty:
                op = serve(addr, is_write, 0, 0)
            else:
                declines[DECLINE_REASONS[code]] += 1
                op = None
            if op is not None:
                ops.append(op)
                served += 1
                continue
            declined += 1
            if ops:
                b_cycles = batch(ops, b_cycles, mlp)
                ops.clear()
            server_flush()
            mem = vec.access(addr, is_write, b_cycles)
            if not is_write:
                b_cycles += mem.latency_cycles / mlp
        if ops:
            b_cycles = batch(ops, b_cycles, mlp)
        server_flush()
        assert served > 0 and declined > 0  # both edges exercised
        assert b_cycles == cycles
        assert vec.stats.as_dict() == ref.stats.as_dict()
        assert (vec.devices.fast.stats.as_dict()
                == ref.devices.fast.stats.as_dict())
        assert (vec.devices.slow.stats.as_dict()
                == ref.devices.slow.stats.as_dict())
        assert (vec.remap_cache.stats.as_dict()
                == ref.remap_cache.stats.as_dict())
        vec.columnar.verify()

    def test_decline_reasons_are_counted_per_reason(self):
        """A batched sim run charges every decline to a named reason —
        the counters stay out of ``stats`` (bit-identity) but must sum
        to the seam's decline count."""
        config = make_small_config()
        sim_config = make_small_sim_config()
        trace = _make_trace(ZipfWorkload, config, 3000, seed=2)
        ctrl = BaryonController(config, seed=2)
        trace.apply_compressibility(ctrl.oracle)
        SystemSimulator(ctrl, sim_config).run(trace, "wl", "baryon")
        declines = ctrl.deferred_declines
        assert set(declines) == {
            "z_break", "write_overflow", "staging_fetch", "no_stage",
            "invariant",
        }
        assert all(count >= 0 for count in declines.values())


class TestSimpleDesignSeam:
    """The ``simple`` baseline batches its hit stream too."""

    def test_sim_run_bit_identical_and_seam_engaged(self):
        from repro.baselines.simple_cache import SimpleCache

        config = make_small_config()
        sim_config = make_small_sim_config()
        payloads = {}
        ctrls = {}
        for scalar in (True, False):
            trace = _make_trace(ZipfWorkload, config, 3000, seed=2)
            ctrl = SimpleCache(config)
            sim = SystemSimulator(ctrl, sim_config)
            payloads[scalar] = sim.run(trace, "wl", "simple", scalar=scalar).to_dict()
            ctrls[scalar] = ctrl
        assert payloads[True] == payloads[False]
        # The batched run actually entered the deferred seam: its miss
        # stream declined per-reason (hits batched silently), while the
        # scalar run never classifies.
        assert ctrls[False].deferred_declines["block_fill"] > 0
        assert ctrls[True].deferred_declines["block_fill"] == 0

    @pytest.mark.parametrize("seed", [5, 23])
    def test_fuzz_twin_clean(self, seed):
        from repro.validation.fuzz import run_simple_case

        records = generate_trace(random.Random(seed), make_tiny_config(), 700)
        run_simple_case({}, records, seed)


def _run_with_warmup(warmup_fraction, n=20000, seed=3):
    config = make_small_config()
    sim_config = dataclasses.replace(
        make_small_sim_config(), warmup_fraction=warmup_fraction
    )
    trace = _make_trace(ZipfWorkload, config, n, seed)
    ctrl = BaryonController(config, seed=seed)
    trace.apply_compressibility(ctrl.oracle)
    return SystemSimulator(ctrl, sim_config).run(trace)


class TestMeasurementWindow:
    """Energy and ``extra`` must describe the measured window only."""

    def test_energy_per_access_warmup_invariant(self):
        full = _run_with_warmup(0.0)
        half = _run_with_warmup(0.5)
        assert half.memory_accesses < full.memory_accesses
        per_full = full.energy.total_j / full.memory_accesses
        per_half = half.energy.total_j / half.memory_accesses
        # Pre-fix, half-warmup energy covered the whole run: per-access
        # energy came out ~2x. Stationary trace => ~equal per access.
        assert 0.7 < per_half / per_full < 1.4

    def test_extra_counters_warmup_invariant(self):
        full = _run_with_warmup(0.0)
        half = _run_with_warmup(0.5)
        commits_full = full.extra["ctrl_commits"] / full.memory_accesses
        commits_half = half.extra["ctrl_commits"] / half.memory_accesses
        # Pre-fix, ctrl_commits was the full-run total regardless of
        # warmup; per measured access it came out ~2x for warmup 0.5.
        assert 0.7 < commits_half / commits_full < 1.4
        # Miss rate is now a window rate; on a stationary trace both
        # windows sit near the steady-state rate.
        assert full.extra["llc_miss_rate"] > 0.0
        assert half.extra["llc_miss_rate"] == pytest.approx(
            full.extra["llc_miss_rate"], rel=0.25
        )

    def test_useful_bytes_follow_line_size(self):
        """useful_bytes derives from the configured LLC line size."""
        config = make_small_config()
        hierarchy = HierarchyConfig(
            cores=2,
            l1d=CacheGeometry("L1D", 16 * KB, 8, line_size=128, latency_cycles=4),
            l2=CacheGeometry("L2", 64 * KB, 8, line_size=128, latency_cycles=9),
            llc=CacheGeometry("LLC", 128 * KB, 16, line_size=128, latency_cycles=38),
        )
        sim_config = SimulationConfig(hierarchy=hierarchy, warmup_fraction=0.1)
        trace = _make_trace(ZipfWorkload, config, 4000, seed=2)
        ctrl = BaryonController(config, seed=2)
        trace.apply_compressibility(ctrl.oracle)
        result = SystemSimulator(ctrl, sim_config).run(trace)
        assert result.llc_misses > 0
        assert result.useful_bytes == result.llc_misses * 128
