"""Stage area mechanics: LRU ranks, FIFO slots, miss counters, aging."""

import pytest

from repro.common.config import Geometry, StageConfig
from repro.common.errors import LayoutError
from repro.core.stage_area import StageArea
from repro.metadata.stage_tag import RangeSlot

KB = 1024


@pytest.fixture
def stage():
    # 64 kB stage = 32 blocks = 8 sets x 4 ways.
    return StageArea(
        StageConfig(size_bytes=64 * KB, ways=4, aging_period_accesses=16),
        Geometry(),
    )


def alloc(stage, super_id):
    result = stage.allocate(super_id)
    assert result is not None
    return result


class TestAllocation:
    def test_allocate_until_full(self, stage):
        set_index = stage.set_index_of(0)
        n = stage.num_sets
        for i in range(4):
            s, way = alloc(stage, i * n)  # same set, different supers
            assert s == set_index
        assert stage.allocate(4 * n) is None

    def test_allocated_entry_is_mru(self, stage):
        _, w0 = alloc(stage, 0)
        s, w1 = alloc(stage, stage.num_sets)
        assert stage.mru_way(s) == w1
        assert stage.lru_way(s) == w0

    def test_invalidate_returns_snapshot_and_frees(self, stage):
        s, w = alloc(stage, 0)
        stage.insert_range(s, w, RangeSlot(cf=1, blk_off=2, sub_start=3))
        snap = stage.invalidate(s, w)
        assert snap.occupancy() == 1
        assert stage.tags.invalid_way(s) is not None
        with pytest.raises(LayoutError):
            stage.invalidate(s, w)

    def test_lookup_block_and_sub(self, stage):
        s, w = alloc(stage, 5)
        stage.insert_range(s, w, RangeSlot(cf=2, blk_off=1, sub_start=4))
        assert stage.lookup_block(5, 1) == (w, stage.entry(s, w))
        assert stage.lookup_block(5, 2) is None
        hit = stage.lookup_sub_block(5, 1, 5)
        assert hit is not None and hit[0] == w
        assert stage.lookup_sub_block(5, 1, 6) is None


class TestLruRanks:
    def test_ranks_stay_dense_and_bounded(self, stage):
        s = stage.set_index_of(0)
        ways = [alloc(stage, i * stage.num_sets)[1] for i in range(4)]
        for way in (ways[0], ways[2], ways[0]):
            stage.touch(s, way)
        ranks = sorted(stage.entry(s, w).lru for w in ways)
        assert ranks == [0, 1, 2, 3]  # exact 3-bit-expressible ranks

    def test_touch_promotes_to_mru(self, stage):
        s = stage.set_index_of(0)
        ways = [alloc(stage, i * stage.num_sets)[1] for i in range(3)]
        stage.touch(s, ways[0])
        assert stage.mru_way(s) == ways[0]
        assert stage.is_lru(s, ways[1])

    def test_invalidate_compacts_ranks(self, stage):
        s = stage.set_index_of(0)
        ways = [alloc(stage, i * stage.num_sets)[1] for i in range(4)]
        stage.invalidate(s, ways[1])
        ranks = sorted(
            stage.entry(s, w).lru for w in ways if stage.entry(s, w).valid
        )
        assert ranks == [0, 1, 2]


class TestFifoSlots:
    def test_fifo_wraps_in_insertion_order(self, stage):
        s, w = alloc(stage, 0)
        for i in range(8):
            stage.insert_range(s, w, RangeSlot(cf=1, blk_off=0, sub_start=i))
        victims = [stage.fifo_victim_slot(s, w) for _ in range(3)]
        assert victims == [0, 1, 2]

    def test_fifo_skips_empty_slots(self, stage):
        s, w = alloc(stage, 0)
        for i in range(3):
            stage.insert_range(s, w, RangeSlot(cf=1, blk_off=0, sub_start=i))
        stage.remove_slot(s, w, 0)
        assert stage.fifo_victim_slot(s, w) == 1

    def test_fifo_empty_block_raises(self, stage):
        s, w = alloc(stage, 0)
        with pytest.raises(LayoutError):
            stage.fifo_victim_slot(s, w)

    def test_insert_into_full_raises(self, stage):
        s, w = alloc(stage, 0)
        for i in range(8):
            stage.insert_range(s, w, RangeSlot(cf=1, blk_off=0, sub_start=i))
        with pytest.raises(LayoutError):
            stage.insert_range(s, w, RangeSlot(cf=1, blk_off=1, sub_start=0))


class TestMissCounters:
    def test_entry_miss_count(self, stage):
        s, w = alloc(stage, 0)
        stage.record_block_miss(s, w)
        assert stage.entry(s, w).miss_count == 1

    def test_mru_miss_counted_for_mru_way(self, stage):
        s, w0 = alloc(stage, 0)
        _, w1 = alloc(stage, stage.num_sets)
        stage.record_block_miss(s, w1)  # w1 is MRU
        assert stage.mru_miss_cnt[s] == 1
        stage.record_block_miss(s, w0)  # w0 is LRU: set counter unchanged
        assert stage.mru_miss_cnt[s] == 1

    def test_block_level_miss_counts_to_set(self, stage):
        s = stage.set_index_of(0)
        stage.record_block_miss(s, None)
        assert stage.mru_miss_cnt[s] == 1

    def test_aging_halves_counters(self, stage):
        s, w = alloc(stage, 0)
        for _ in range(8):
            stage.record_block_miss(s, w)
        assert stage.entry(s, w).miss_count == 8
        for _ in range(16):  # one aging period
            stage.record_set_access(s)
        assert stage.entry(s, w).miss_count == 4
        assert stage.mru_miss_cnt[s] == 4

    def test_counters_saturate(self, stage):
        s, w = alloc(stage, 0)
        stage.entry(s, w).miss_count = stage.config.miss_counter_max()
        stage.record_block_miss(s, w)
        assert stage.entry(s, w).miss_count == stage.config.miss_counter_max()


class TestAccounting:
    def test_occupancy(self, stage):
        assert stage.occupancy() == 0.0
        alloc(stage, 0)
        assert stage.occupancy() == pytest.approx(1 / 32)

    def test_storage_matches_entry_size(self, stage):
        assert stage.storage_bytes() == 32 * 14
