"""The Eq. 1 commit policy and the committed-area bookkeeping."""

import pytest

from repro.common.config import CommitConfig, Geometry
from repro.common.errors import LayoutError
from repro.core.commit import CommitPolicy
from repro.core.fast_area import FastArea, FastBlockState


class TestCommitPolicy:
    def decide(self, k=4.0, mru=40, assoc=4, victim=0, ds=0, da=0, **cfg):
        policy = CommitPolicy(CommitConfig(k=k, **cfg))
        return policy.decide(mru, assoc, victim, ds, da)

    def test_stable_block_commits(self):
        """Low own-MissCnt vs high just-staged estimate: commit."""
        d = self.decide(mru=40, victim=1)
        assert d.commit
        assert d.stability_term == pytest.approx(9.0)

    def test_unstable_block_evicts(self):
        d = self.decide(mru=8, victim=20, ds=0, da=0)
        assert not d.commit

    def test_k_zero_is_write_cost_only(self):
        """k=0 degenerates to Hybrid2's dirty-count comparison."""
        d = self.decide(k=0.0, mru=1000, victim=0, ds=2, da=5)
        assert not d.commit
        d = self.decide(k=0.0, mru=0, victim=100, ds=5, da=2)
        assert d.commit

    def test_k_infinity_is_stability_only(self):
        d = self.decide(stability_only=True, mru=0, victim=1, ds=100, da=0)
        assert not d.commit
        d = self.decide(stability_only=True, mru=8, victim=1, ds=0, da=100)
        assert d.commit

    def test_commit_all(self):
        d = self.decide(commit_all=True, mru=0, victim=10_000, ds=0, da=8)
        assert d.commit

    def test_boundary_is_commit(self):
        """B == 0 commits (the paper: 'if B >= 0')."""
        d = self.decide(k=1.0, mru=4, assoc=4, victim=1, ds=0, da=0)
        assert d.benefit == pytest.approx(0.0)
        assert d.commit

    def test_dirty_term_tradeoff(self):
        base = self.decide(k=1.0, mru=4, victim=2, ds=0, da=0)
        assert not base.commit
        flipped = self.decide(k=1.0, mru=4, victim=2, ds=4, da=0)
        assert flipped.commit

    def test_stats_counted(self):
        policy = CommitPolicy(CommitConfig(k=1.0))
        policy.decide(100, 4, 0, 0, 0)
        policy.decide(0, 4, 100, 0, 0)
        assert policy.stats.get("commits") == 1
        assert policy.stats.get("evictions") == 1


class TestFastArea:
    def make(self, num_sets=4, ways=2, replacement="lru"):
        return FastArea(num_sets, ways, Geometry(), replacement)

    def test_install_lookup_remove(self):
        area = self.make()
        state = FastBlockState(super_id=9, committed={0: 2}, slots_used=2)
        set_index = area.set_of_super(9)
        area.install(set_index, 0, state)
        assert area.lookup_super(9) == [(0, state)]
        assert area.find_block(9, 0) == (0, state)
        assert area.find_block(9, 1) is None
        removed = area.remove(set_index, 0)
        assert removed is state
        assert area.lookup_super(9) == []

    def test_double_install_rejected(self):
        area = self.make()
        area.install(0, 0, FastBlockState(super_id=0))
        with pytest.raises(LayoutError):
            area.install(0, 0, FastBlockState(super_id=4))

    def test_remove_empty_rejected(self):
        with pytest.raises(LayoutError):
            self.make().remove(0, 0)

    def test_lru_victim_respects_touch(self):
        area = self.make()
        a = FastBlockState(super_id=0)
        b = FastBlockState(super_id=4)
        area.install(0, 0, a)
        area.install(0, 1, b)
        area.touch(0, 0)
        assert area.victim_way(0) == 1

    def test_fifo_victim_ignores_touch(self):
        area = self.make(replacement="fifo")
        area.install(0, 0, FastBlockState(super_id=0))
        area.install(0, 1, FastBlockState(super_id=4))
        area.touch(0, 0)
        assert area.victim_way(0) == 0

    def test_free_way_preferred_as_victim(self):
        area = self.make()
        area.install(0, 0, FastBlockState(super_id=0))
        assert area.victim_way(0) == 1
        assert area.peek_victim(0) is None

    def test_peek_victim_full_set(self):
        area = self.make()
        a = FastBlockState(super_id=0, dirty_subs={(0, 1)})
        area.install(0, 0, a)
        area.install(0, 1, FastBlockState(super_id=4))
        area.touch(0, 1)
        assert area.peek_victim(0) is a

    def test_same_super_multiple_ways(self):
        """A super-block's data can occupy more than one physical block."""
        area = self.make()
        area.install(0, 0, FastBlockState(super_id=0, committed={1: 1}))
        area.install(0, 1, FastBlockState(super_id=0, committed={2: 1}))
        assert len(area.lookup_super(0)) == 2
        assert area.find_block(0, 2)[0] == 1

    def test_occupancy(self):
        area = self.make()
        assert area.occupancy() == 0.0
        area.install(0, 0, FastBlockState(super_id=0))
        assert area.occupancy() == pytest.approx(1 / 8)

    def test_dirty_count(self):
        state = FastBlockState(super_id=0, dirty_subs={(0, 1), (2, 3)})
        assert state.dirty_count() == 2

    def test_validation(self):
        with pytest.raises(LayoutError):
            FastArea(0, 1, Geometry())
        with pytest.raises(LayoutError):
            FastArea(1, 1, Geometry(), replacement="belady")
