"""End-to-end integration: full stack runs and paper-shaped relations."""

import dataclasses

import pytest

from repro.analysis import run_one
from repro.common.config import CommitConfig
from repro.core import BaryonController
from repro.sim import SystemSimulator
from repro.workloads import ZipfWorkload, build_workload, scaled_system

from tests.conftest import make_small_config, make_small_sim_config


def run_baryon(config, trace, sim_config, seed=2):
    ctrl = BaryonController(config, seed=seed)
    trace.apply_compressibility(ctrl.oracle)
    return SystemSimulator(ctrl, sim_config).run(trace), ctrl


class TestEndToEnd:
    @pytest.mark.parametrize(
        "design", ["simple", "unison", "dice", "baryon", "hybrid2", "baryon-fa"]
    )
    def test_every_design_completes_each_domain(self, design):
        config = make_small_config()
        sim_config = make_small_sim_config()
        for workload in ("520.omnetpp_r", "YCSB-B"):
            result = run_one(workload, design, config, sim_config, n_accesses=2000)
            assert result.memory_accesses > 0
            assert 0.0 <= result.serve_rate <= 1.0
            assert result.ipc > 0

    def test_scaled_system_ratios(self):
        baryon_cfg, sim_cfg = scaled_system(256)
        # Capacity ratios of Table I survive scaling.
        assert baryon_cfg.layout.capacity_ratio == 8
        assert baryon_cfg.layout.associativity == 4
        # The stage keeps its 4-way organization and ~1:64 size ratio.
        assert baryon_cfg.stage.ways == 4
        ratio = baryon_cfg.layout.fast_capacity / baryon_cfg.stage.size_bytes
        assert 16 <= ratio <= 128
        # Latencies are untouched by scaling.
        assert baryon_cfg.timings.slow_read_latency_cycles == 246

    def test_scaled_system_rejects_bad_scale(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            scaled_system(0)


class TestPaperShapedRelations:
    """Relations the paper's evaluation hinges on, at test scale."""

    def make_trace(self, config, theta=1.0, n=6000, seed=6):
        return ZipfWorkload(
            "z", 4 * config.layout.fast_capacity, seed=seed, theta=theta
        ).generate(n)

    def test_compression_improves_serve_and_demand_traffic(self):
        """On highly compressible data, compression raises the fast-memory
        serve rate and cuts *demand* slow-memory reads (the paper's core
        capacity claim). Total slow traffic can transiently rise from the
        maximal-range prefetches, so it is not asserted here."""
        config = make_small_config()
        sim_config = make_small_sim_config()
        trace = self.make_trace(config)
        trace.default_profile = "high"
        with_ctrl = BaryonController(config, seed=2)
        trace.apply_compressibility(with_ctrl.oracle)
        with_c = SystemSimulator(with_ctrl, sim_config).run(trace)
        no_c_config = dataclasses.replace(config, compression_enabled=False)
        without_ctrl = BaryonController(no_c_config, seed=2)
        without_c = SystemSimulator(without_ctrl, sim_config).run(trace)
        assert with_c.serve_rate > without_c.serve_rate
        assert with_ctrl.devices.slow.stats.get(
            "demand_read_bytes"
        ) <= without_ctrl.devices.slow.stats.get("demand_read_bytes")

    def test_stage_area_reduces_fast_traffic_vs_no_stage(self):
        """Without the stage, every insertion re-sorts the block layout
        (Fig. 13c: 34.5% average degradation)."""
        config = make_small_config()
        sim_config = make_small_sim_config()
        trace = self.make_trace(config)
        staged, _ = run_baryon(config, trace, sim_config)
        nostage_cfg = make_small_config(stage_enabled=False)
        nostage, _ = run_baryon(nostage_cfg, trace, sim_config)
        assert staged.ipc >= nostage.ipc * 0.9

    def test_commit_miss_rate_below_stage_miss_rate(self):
        """Fig. 3: committed blocks miss far less than just-staged ones."""
        from repro.core.tracking import StagePhaseTracker

        config = make_small_config()
        tracker = StagePhaseTracker()
        ctrl = BaryonController(config, tracker=tracker, seed=2)
        trace = self.make_trace(config, n=12000)
        trace.apply_compressibility(ctrl.oracle)
        SystemSimulator(ctrl, make_small_sim_config()).run(trace)
        if tracker.miss_rate("S") > 0 and any(
            cat == "C" for cat, _ in tracker.breakdown
        ):
            assert tracker.miss_rate("C") <= tracker.miss_rate("S") * 1.5

    def test_zero_heavy_data_boosts_serve_rate(self):
        config = make_small_config()
        sim_config = make_small_sim_config()
        trace = self.make_trace(config)
        trace.default_profile = "zero_heavy"
        zero_heavy, _ = run_baryon(config, trace, sim_config)
        trace.default_profile = "incompressible"
        incompressible, _ = run_baryon(config, trace, sim_config)
        assert zero_heavy.serve_rate > incompressible.serve_rate

    def test_selective_commit_not_worse_than_commit_all(self):
        config = make_small_config()
        sim_config = make_small_sim_config()
        trace = self.make_trace(config, n=8000)
        selective, _ = run_baryon(config, trace, sim_config)
        all_cfg = dataclasses.replace(config, commit=CommitConfig(commit_all=True))
        commit_all, _ = run_baryon(all_cfg, trace, sim_config)
        assert selective.ipc >= commit_all.ipc * 0.85

    def test_compressed_writeback_saves_slow_bandwidth(self):
        config = make_small_config()
        sim_config = make_small_sim_config()
        trace = ZipfWorkload(
            "z", 4 * config.layout.fast_capacity, seed=6, write_fraction=0.5
        ).generate(8000)
        trace.default_profile = "high"
        on, _ = run_baryon(config, trace, sim_config)
        off_cfg = dataclasses.replace(config, compressed_writeback=False)
        off, _ = run_baryon(off_cfg, trace, sim_config)
        assert on.slow_traffic_bytes <= off.slow_traffic_bytes

    def test_flat_mode_serves_resident_homes_fast(self):
        config = make_small_config(flat=1.0)
        sim_config = make_small_sim_config()
        # Footprint just above fast capacity: mostly home-fast accesses.
        trace = ZipfWorkload(
            "z", int(1.3 * config.layout.fast_capacity), seed=8
        ).generate(5000)
        result, ctrl = run_baryon(config, trace, sim_config)
        assert result.serve_rate > 0.5
