"""DRAM row-buffer/bank model."""

import dataclasses

import pytest

from repro.common.config import MemoryTimings
from repro.core import BaryonController
from repro.devices.memory import HybridMemoryDevices
from repro.devices.rowbuffer import RowBufferModel

from tests.conftest import make_small_config


class TestRowBufferModel:
    def make(self):
        return RowBufferModel(channels=1, banks_per_channel=2, row_bytes=2048)

    def test_first_access_is_activation(self):
        model = self.make()
        latency = model.access(0)
        assert latency == model.t_rcd + model.t_cas
        assert model.activations == 1

    def test_row_hit_is_cas_only(self):
        model = self.make()
        model.access(0)
        assert model.access(64) == model.t_cas
        assert model.row_hit_rate == 0.5

    def test_conflict_pays_precharge(self):
        model = self.make()
        model.access(0)
        # Same bank, different row: rows interleave across 2 banks, so
        # row 2 maps back to bank 0.
        latency = model.access(2 * 2048)
        assert latency == model.t_rp + model.t_rcd + model.t_cas
        assert model.stats.get("precharges") == 1

    def test_different_banks_independent(self):
        model = self.make()
        model.access(0)            # bank 0, row 0
        model.access(2048)         # bank 1, row 0
        assert model.access(64) == model.t_cas   # bank 0 still open
        assert model.access(2048 + 64) == model.t_cas

    def test_streams_are_row_friendly(self):
        model = RowBufferModel(channels=4, banks_per_channel=16)
        for line in range(512):   # one 32 kB stream
            model.access(line * 64)
        assert model.row_hit_rate > 0.9

    def test_reset(self):
        model = self.make()
        model.access(0)
        model.reset()
        assert model.activations == 0


class TestIntegration:
    def test_devices_attach_model_when_configured(self):
        timings = MemoryTimings(model_row_buffer=True)
        devices = HybridMemoryDevices(timings)
        assert devices.fast.row_buffer is not None
        assert devices.slow.row_buffer is None

    def test_row_hits_cut_fast_latency(self):
        timings = MemoryTimings(model_row_buffer=True)
        devices = HybridMemoryDevices(timings)
        miss = devices.fast.read(0.0, 64, addr=0)
        hit = devices.fast.read(0.0, 64, addr=64)
        assert hit.latency_cycles < miss.latency_cycles

    def test_addressless_calls_fall_back(self):
        timings = MemoryTimings(model_row_buffer=True)
        devices = HybridMemoryDevices(timings)
        access = devices.fast.read(0.0, 64)
        assert access.latency_cycles == timings.fast_read_latency_cycles

    def test_controller_runs_with_row_buffer(self):
        config = make_small_config()
        config = dataclasses.replace(
            config, timings=MemoryTimings(model_row_buffer=True)
        )
        ctrl = BaryonController(config, seed=1)
        import random

        rng = random.Random(5)
        for _ in range(2000):
            addr = (rng.randrange(4 * config.layout.fast_capacity) // 64) * 64
            ctrl.access(addr, rng.random() < 0.3)
        rb = ctrl.devices.fast.row_buffer
        assert rb.stats.get("row_hits") + rb.stats.get("row_misses") > 0
        assert 0.0 <= rb.row_hit_rate <= 1.0
