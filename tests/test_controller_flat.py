"""Flat-scheme behaviour: homes, displacement, swaps, FA organization."""

import pytest

from repro.common.config import CommitConfig
from repro.core import AccessCase, BaryonController

from tests.conftest import make_small_config
from tests.test_controller_cases import ScriptedOracle


def make_flat(oracle=None, fa=False, **kwargs):
    config = make_small_config(flat=1.0, fully_associative=fa, **kwargs)
    ctrl = BaryonController(config, seed=1)
    if oracle is not None:
        ctrl.oracle = oracle
    return ctrl


def slow_home_addr(ctrl, index=0):
    """An address whose block is homed in slow memory.

    Homes are striped every ``_home_period`` blocks, so any non-multiple
    of the period is slow-homed.
    """
    block = ctrl._home_period * (index + 1) + 1
    assert not ctrl._is_home_block(block)
    return block * ctrl.geometry.block_size


class TestHomes:
    def test_low_addresses_are_fast_homes(self):
        ctrl = make_flat(ScriptedOracle(cf=1))
        result = ctrl.access(0, False)
        assert result.case is AccessCase.FAST_HOME
        assert result.served_fast

    def test_high_addresses_hit_slow_path(self):
        ctrl = make_flat(ScriptedOracle(cf=1))
        result = ctrl.access(slow_home_addr(ctrl), False)
        assert result.case is AccessCase.BLOCK_MISS

    def test_home_location_roundtrip(self):
        ctrl = make_flat(ScriptedOracle(cf=1))
        period = ctrl._home_period
        for block in (0, period, (ctrl._flat_blocks - 1) * period):
            assert ctrl._is_home_block(block)
            s, w = ctrl._home_location(block)
            assert ctrl._home_block_of(s, w) == block

    def test_homes_striped_across_space(self):
        """Hotness-neutral placement: fast homes are spread, not clustered
        at low addresses."""
        ctrl = make_flat(ScriptedOracle(cf=1))
        assert ctrl._home_period > 1
        assert ctrl._is_home_block(0)
        assert not ctrl._is_home_block(1)
        total = (
            ctrl.config.layout.fast_capacity + ctrl.config.layout.slow_capacity
        ) // ctrl.geometry.block_size
        homes = sum(ctrl._is_home_block(b) for b in range(total))
        assert homes == pytest.approx(ctrl._flat_blocks, rel=0.01)

    def test_home_never_staged(self):
        ctrl = make_flat(ScriptedOracle(cf=1))
        ctrl.access(0, False)
        assert ctrl.stage.occupancy() == 0.0


class TestDisplacement:
    def commit_into_flat(self, ctrl):
        """Stage slow-homed blocks until one commits into a flat way."""
        n = ctrl.stage.num_sets
        sbs = ctrl.geometry.super_block_size
        base = (ctrl._flat_blocks + 8) * ctrl.geometry.block_size
        base -= base % sbs
        for i in range(ctrl.stage.ways + 2):
            ctrl.access(base + i * n * sbs, False)
        assert ctrl.stats.get("commits") >= 1

    def test_commit_displaces_home(self):
        ctrl = make_flat(ScriptedOracle(cf=1), commit=CommitConfig(commit_all=True))
        self.commit_into_flat(ctrl)
        assert ctrl.stats.get("home_displacements") >= 1
        assert ctrl._displaced

    def test_displaced_home_served_slow(self):
        ctrl = make_flat(ScriptedOracle(cf=1), commit=CommitConfig(commit_all=True))
        self.commit_into_flat(ctrl)
        home = next(iter(ctrl._displaced))
        result = ctrl.access(home * ctrl.geometry.block_size, False)
        assert result.case is AccessCase.SLOW_DIRECT
        assert not result.served_fast

    def test_displacement_moves_data_to_slow(self):
        ctrl = make_flat(ScriptedOracle(cf=1), commit=CommitConfig(commit_all=True))
        before = ctrl.devices.slow.stats.get("write_bytes")
        self.commit_into_flat(ctrl)
        # The spread-swap writes the displaced 2 kB home block to slow.
        assert ctrl.devices.slow.stats.get("write_bytes") - before >= 2048

    def test_flat_eviction_restores_home(self):
        ctrl = make_flat(ScriptedOracle(cf=1), commit=CommitConfig(commit_all=True))
        self.commit_into_flat(ctrl)
        home = next(iter(ctrl._displaced))
        set_index, way = ctrl._displaced[home]
        ctrl._evict_fast_block(1e9, set_index, way, for_commit=False)
        assert home not in ctrl._displaced
        assert ctrl.stats.get("home_restores") == 1
        # Home block serves fast again.
        result = ctrl.access(home * ctrl.geometry.block_size, False)
        assert result.case is AccessCase.FAST_HOME

    def test_slow_swap_keeps_home_displaced_for_commit(self):
        ctrl = make_flat(ScriptedOracle(cf=1), commit=CommitConfig(commit_all=True))
        self.commit_into_flat(ctrl)
        home = next(iter(ctrl._displaced))
        set_index, way = ctrl._displaced[home]
        ctrl._evict_fast_block(1e9, set_index, way, for_commit=True)
        assert home in ctrl._displaced
        assert ctrl.stats.get("slow_swaps") == 1


class TestFullyAssociative:
    def test_single_set(self):
        ctrl = make_flat(ScriptedOracle(cf=1), fa=True)
        assert ctrl.fast_area.num_sets == 1
        assert ctrl.fast_area.replacement == "fifo"

    def test_fa_flat_runs(self):
        ctrl = make_flat(ScriptedOracle(cf=2), fa=True, commit=CommitConfig(commit_all=True))
        import random

        rng = random.Random(3)
        total = ctrl.config.layout.fast_capacity + ctrl.config.layout.slow_capacity
        for _ in range(3000):
            addr = (rng.randrange(total // 2) // 64) * 64
            ctrl.access(addr, rng.random() < 0.3)
        assert ctrl.stats.get("accesses") == 3000
        assert 0.0 <= ctrl.serve_rate() <= 1.0

    def test_fifo_victim_pointer_cycles(self):
        ctrl = make_flat(ScriptedOracle(cf=1), fa=True)
        first, _ = ctrl._commit_victim_way(0)
        second, _ = ctrl._commit_victim_way(0)
        assert second == (first + 1) % ctrl.fast_area.ways


class TestNoStageAblation:
    def test_inserts_directly_into_fast_area(self):
        ctrl = BaryonController(
            make_small_config(stage_enabled=False), seed=1
        )
        ctrl.oracle = ScriptedOracle(cf=1)
        ctrl.access(0, False)
        assert ctrl.remap_table.get(0).is_remapped
        result = ctrl.access(0, False)
        assert result.case is AccessCase.COMMIT_HIT

    def test_resort_penalty_charged(self):
        ctrl = BaryonController(make_small_config(stage_enabled=False), seed=1)
        ctrl.oracle = ScriptedOracle(cf=1)
        ctrl.access(0, False)
        ctrl.access(4 * 256, False)  # second range into the same block
        assert ctrl.stats.get("layout_resorts") >= 1

    def test_rule3_pointer_stable_across_insertions(self):
        ctrl = BaryonController(make_small_config(stage_enabled=False), seed=1)
        ctrl.oracle = ScriptedOracle(cf=1)
        ctrl.access(0, False)
        pointer = ctrl.remap_table.get(0).pointer
        ctrl.access(4 * 256, False)
        assert ctrl.remap_table.get(0).pointer == pointer
        assert ctrl.remap_table.get(0).sub_block_remapped(0)
        assert ctrl.remap_table.get(0).sub_block_remapped(4)
