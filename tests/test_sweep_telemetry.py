"""Sweep-scale telemetry: heartbeats, spans through the runner,
cross-shard metric aggregation, and run manifests.

The load-bearing guarantees pinned here:

* telemetry (spans, progress, metrics) changes **nothing** about the
  fold — counters and results are bit-identical with it on or off,
  serial or pooled;
* shard-labeled counters collapsed with ``sum_over_label`` equal the
  registry a single serial run accumulates, bit for bit;
* heartbeats extend the dead-worker deadline (a slow-but-beating cell
  is not reaped), while the no-telemetry deadline semantics are
  untouched;
* a manifest written by one run diffs clean against a re-run of the
  same plan and flags a different plan as an identity difference.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.analysis.experiments import run_cell
from repro.common.errors import ConfigurationError
from repro.obs import (
    HEARTBEAT_SCHEMA,
    MetricsRegistry,
    ProgressTracker,
    SpanTracer,
    aggregate_shard_snapshots,
    build_manifest,
    counter_digest,
    diff_manifests,
    format_diff,
    load_manifest,
    make_heartbeat,
    merge_snapshot,
    sum_over_label,
    write_manifest,
)
from repro.obs.metrics import Histogram
from repro.parallel import (
    SweepTelemetry,
    clear_trace_cache,
    fork_available,
    plan_cells,
    run_plan,
)
from repro.workloads import build_workload

from tests.conftest import make_small_config, make_small_sim_config

WORKLOADS = ["YCSB-B", "557.xz_r"]
DESIGNS = ["simple", "baryon"]
N_ACCESSES = 1200


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def small_configs():
    return make_small_config(), make_small_sim_config()


def make_plan():
    return plan_cells(WORKLOADS, DESIGNS, seed=3)


# --------------------------------------------------------------- heartbeats
class FakeCell:
    index = 4
    workload = "YCSB-B"
    design = "baryon"
    seed = 3


class TestHeartbeats:
    def test_make_heartbeat_matches_schema(self):
        event = make_heartbeat(FakeCell(), 2, 500, 1000, 0.25, 123)
        for field in HEARTBEAT_SCHEMA["heartbeat"]:
            assert field in event
        assert event["type"] == "heartbeat"
        assert event["cell"] == 4 and event["attempt"] == 2
        assert event["accesses_per_s"] == pytest.approx(2000.0)
        json.dumps(event)

    def test_zero_elapsed_rate_is_zero(self):
        assert make_heartbeat(FakeCell(), 1, 0, 10, 0.0, 1)["accesses_per_s"] == 0.0

    def test_tracker_folds_lifecycle(self):
        tracker = ProgressTracker(total_cells=2)
        tracker.on_event(make_heartbeat(FakeCell(), 1, 500, 1000, 0.5, 1))
        assert tracker.running_cells == 1
        assert tracker.aggregate_rate() == pytest.approx(1000.0)
        # 500 left on the running cell plus one queued 1000-access cell.
        assert tracker.eta_s() == pytest.approx(1.5)
        tracker.on_event({"type": "cell_done", "cell": 4})
        assert tracker.cells_done == 1 and tracker.running_cells == 0
        tracker.on_event({"type": "cell_failed", "cell": 5})
        assert tracker.cells_done == 2 and tracker.cells_failed == 1
        assert "FAILED" in tracker.status_line()

    def test_eta_unknown_without_rate(self):
        tracker = ProgressTracker(total_cells=2)
        assert tracker.eta_s() is None
        assert "eta ?" in tracker.status_line()

    def test_sink_receives_every_event(self):
        sink = io.StringIO()
        tracker = ProgressTracker(total_cells=1, sink=sink)
        tracker.on_event(make_heartbeat(FakeCell(), 1, 10, 100, 0.1, 1))
        tracker.on_event({"type": "cell_done", "cell": 4})
        tracker.finish()
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [e["type"] for e in lines] == ["heartbeat", "cell_done"]

    def test_render_repaints_one_line(self):
        stream = io.StringIO()
        clock = iter([1.0, 1.05, 2.0]).__next__
        tracker = ProgressTracker(total_cells=1, stream=stream, clock=clock)
        tracker.on_event(make_heartbeat(FakeCell(), 1, 10, 100, 0.1, 1))
        tracker.on_event(make_heartbeat(FakeCell(), 1, 20, 100, 0.2, 1))
        assert stream.getvalue().count("\r\x1b[K") == 1  # second paint throttled
        tracker.finish()
        assert stream.getvalue().endswith("\n")


# ------------------------------------------------------ cross-shard metrics
_SHARD_CACHE = {}


class TestCrossShardAggregation:
    def run_shards(self):
        # The per-cell runs are deterministic; compute them once for the
        # whole class instead of once per test.
        if "runs" not in _SHARD_CACHE:
            config, sim_config = small_configs()
            snapshots = {}
            serial = MetricsRegistry()
            for cell in make_plan():
                shard = MetricsRegistry()
                run_cell(
                    cell.workload, cell.design, config, sim_config,
                    n_accesses=N_ACCESSES, seed=cell.seed, metrics=shard,
                )
                snapshots[cell.index] = shard.to_json()
                run_cell(
                    cell.workload, cell.design, config, sim_config,
                    n_accesses=N_ACCESSES, seed=cell.seed, metrics=serial,
                )
            _SHARD_CACHE["runs"] = (snapshots, serial)
        return _SHARD_CACHE["runs"]

    def test_shard_labeled_counters_sum_bit_identically(self):
        snapshots, serial = self.run_shards()
        merged = aggregate_shard_snapshots(snapshots)
        checked = 0
        for name in serial:
            metric = serial.get(name)
            if metric.kind != "counter":
                continue
            shard_counter = merged.get(name)
            assert shard_counter.label_names == ("shard", *metric.label_names)
            assert sum_over_label(shard_counter) == dict(metric._values)
            checked += 1
        assert checked >= 4  # cases, events, device bytes/transfers, ...

    def test_histograms_fold_elementwise(self):
        snapshots, serial = self.run_shards()
        merged = aggregate_shard_snapshots(snapshots)
        latency = serial.get("repro_mem_latency_cycles")
        folded = merged.get("repro_mem_latency_cycles")
        assert folded.counts == latency.counts
        assert folded.total == latency.total
        assert folded.sum == pytest.approx(latency.sum)
        assert folded.min == latency.min and folded.max == latency.max

    def test_series_kept_per_shard(self):
        snapshots, _ = self.run_shards()
        merged = aggregate_shard_snapshots(snapshots)
        per_shard = [name for name in merged if ":" in name]
        assert per_shard, "expected per-shard series entries"
        for name in per_shard:
            assert name.rsplit(":", 1)[1] in {str(i) for i in snapshots}

    def test_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        snap = {"h": Histogram("h", buckets=(1.0, 3.0)).to_json()}
        with pytest.raises(ValueError, match="bucket bounds"):
            merge_snapshot(registry, snap)

    def test_sum_over_label_requires_label(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labels=("case",))
        counter.inc(1, case="x")
        with pytest.raises(ValueError, match="no label"):
            sum_over_label(counter)

    def test_merged_registry_exports_prometheus(self):
        snapshots, _ = self.run_shards()
        merged = aggregate_shard_snapshots(snapshots)
        text = merged.to_prometheus()
        assert 'shard="0"' in text and "# TYPE" in text


# ------------------------------------------------- telemetry through run_plan
def full_telemetry(n_cells, collect_metrics=True, sink=None):
    return SweepTelemetry(
        spans=SpanTracer(origin="sweep"),
        progress=ProgressTracker(total_cells=n_cells, sink=sink),
        collect_metrics=collect_metrics,
        heartbeat_every=300,
    )


class TestRunPlanTelemetry:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_counters_bit_identical_with_telemetry(self, jobs):
        if jobs > 1 and not fork_available():
            pytest.skip("fork not available")
        config, sim_config = small_configs()
        plan = make_plan()
        baseline = run_plan(plan, config, sim_config,
                            n_accesses=N_ACCESSES, jobs=1)
        clear_trace_cache()
        telemetry = full_telemetry(len(plan))
        observed = run_plan(plan, config, sim_config,
                            n_accesses=N_ACCESSES, jobs=jobs,
                            telemetry=telemetry)
        assert observed.counters.as_dict() == baseline.counters.as_dict()
        assert observed.device_counters.as_dict() == baseline.device_counters.as_dict()
        assert {k: r.to_dict() for k, r in observed.results.items()} == \
               {k: r.to_dict() for k, r in baseline.results.items()}
        assert observed.metrics is not None

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_span_tree_covers_sweep_cell_phase(self, jobs):
        if jobs > 1 and not fork_available():
            pytest.skip("fork not available")
        config, sim_config = small_configs()
        plan = make_plan()
        telemetry = full_telemetry(len(plan), collect_metrics=False)
        run_plan(plan, config, sim_config, n_accesses=N_ACCESSES,
                 jobs=jobs, telemetry=telemetry)
        spans = telemetry.spans.export()
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        for phase in ("sweep", "plan", "simulate", "merge"):
            assert len(by_name[phase]) == 1, phase
        if jobs > 1:
            assert len(by_name["fork"]) == 1
        assert len(by_name["cell"]) == len(plan)
        # Worker-side spans were adopted under the parent cell spans.
        cell_ids = {s["span_id"] for s in by_name["cell"]}
        assert len(by_name["sim.run"]) == len(plan)
        for span in by_name["cell.trace"] + by_name["sim.run"]:
            assert span["parent_id"] in cell_ids
        # Every span is closed and the tree renders.
        assert all(s["end_s"] is not None for s in spans)
        assert telemetry.spans.format_tree().startswith("sweep")
        assert telemetry.spans.open_spans == 0

    def test_progress_stream_sees_heartbeats_and_completions(self):
        config, sim_config = small_configs()
        plan = make_plan()
        sink = io.StringIO()
        telemetry = full_telemetry(len(plan), collect_metrics=False, sink=sink)
        run_plan(plan, config, sim_config, n_accesses=N_ACCESSES,
                 jobs=1, telemetry=telemetry)
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        types = {e["type"] for e in events}
        assert "heartbeat" in types and "cell_done" in types
        done = [e for e in events if e["type"] == "cell_done"]
        assert {e["cell"] for e in done} == {c.index for c in plan}
        assert telemetry.progress.cells_done == len(plan)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_pool_heartbeats_flow_back(self):
        config, sim_config = small_configs()
        plan = make_plan()
        sink = io.StringIO()
        telemetry = full_telemetry(len(plan), collect_metrics=False, sink=sink)
        run_plan(plan, config, sim_config, n_accesses=N_ACCESSES,
                 jobs=2, telemetry=telemetry)
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        beats = [e for e in events if e["type"] == "heartbeat"]
        assert beats, "expected worker heartbeats through the queue"
        assert all(e["pid"] != os.getpid() for e in beats)
        assert telemetry.progress.cells_done == len(plan)

    def test_requeue_surfaces_as_span_event(self, monkeypatch):
        import repro.parallel.runner as runner

        config, sim_config = small_configs()
        plan = plan_cells(["YCSB-B"], ["simple"], seed=3)
        original = runner._execute_cell
        calls = {"n": 0}

        def flaky(cell, config, sim_config, n_accesses, attempt=1, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return original(cell, config, sim_config, n_accesses, attempt,
                            **kwargs)

        monkeypatch.setattr(runner, "_execute_cell", flaky)
        telemetry = full_telemetry(len(plan), collect_metrics=False)
        outcome = run_plan(plan, config, sim_config, n_accesses=600,
                           jobs=1, telemetry=telemetry, max_attempts=2)
        assert outcome.retries == 1 and not outcome.failed
        cell_spans = [s for s in telemetry.spans.export() if s["name"] == "cell"]
        events = [e for span in cell_spans for e in span["events"]]
        assert any(e["name"] == "requeue" for e in events)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_heartbeats_extend_dead_worker_deadline(self):
        """A cell slower than the timeout but beating regularly is never
        reaped: the deadline runs from the last heartbeat."""
        config, sim_config = small_configs()
        plan = plan_cells(["YCSB-B"], ["simple", "baryon"], seed=3)
        telemetry = SweepTelemetry(
            progress=ProgressTracker(total_cells=len(plan)),
            heartbeat_every=200,
        )
        outcome = run_plan(
            plan, config, sim_config, n_accesses=60_000, jobs=2,
            telemetry=telemetry, cell_timeout_s=1.0, max_attempts=2,
        )
        assert not outcome.failed
        assert outcome.retries == 0
        assert len(outcome.results) == len(plan)

    def test_stale_attempt_beat_does_not_extend_deadline(self):
        """Regression: a heartbeat from a superseded attempt must not
        refresh the *current* attempt's dead/hung deadlines. After a
        requeue, the abandoned worker of attempt 1 can keep beating for a
        long time; if those beats reset attempt 2's clock, a genuinely
        dead attempt-2 worker would never be reaped."""
        from repro.parallel.runner import _Inflight

        entry = _Inflight(attempt=2, handle=None, now=100.0)
        stale = {"attempt": 1, "done": 700, "total": 800}
        current = {"attempt": 2, "done": 100, "total": 800}

        assert entry.note_beat(dict(current), 100.5)
        # Interleave stale attempt-1 beats: rejected, and none of the
        # bookkeeping (beat clock, progress clock, done counter) moves.
        for now in (101.0, 102.0, 103.0):
            assert not entry.note_beat(dict(stale), now)
        assert entry.last_beat_t == 100.5
        assert entry.last_progress_t == 100.5
        assert entry.last_done == 100
        # With only stale beats since 100.5, attempt 2 is declared dead…
        assert entry.dead(104.0, 3.0)
        # …whereas a real attempt-2 beat does extend the deadline.
        assert entry.note_beat(dict(current, done=200), 104.0)
        assert not entry.dead(104.5, 3.0)

    def test_resumed_cells_reported_to_progress(self, tmp_path):
        config, sim_config = small_configs()
        plan = make_plan()
        ckpt = str(tmp_path / "sweep.json")
        run_plan(plan, config, sim_config, n_accesses=N_ACCESSES,
                 jobs=1, checkpoint=ckpt)
        sink = io.StringIO()
        telemetry = full_telemetry(len(plan), collect_metrics=False, sink=sink)
        outcome = run_plan(plan, config, sim_config, n_accesses=N_ACCESSES,
                           jobs=1, resume=ckpt, telemetry=telemetry)
        assert outcome.resumed == len(plan)
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert sum(e["type"] == "cell_done" for e in events) == len(plan)
        assert all(e.get("resumed") for e in events if e["type"] == "cell_done")
        sweep = [s for s in telemetry.spans.export() if s["name"] == "sweep"][0]
        assert any(e["name"] == "resume" for e in sweep["events"])


# ----------------------------------------------------------------- manifests
class TestManifests:
    def build(self, tmp_path, seed=3, name="run.manifest.json"):
        config, sim_config = small_configs()
        plan = plan_cells(["YCSB-B"], DESIGNS, seed=seed)
        path = str(tmp_path / name)
        outcome = run_plan(plan, config, sim_config, n_accesses=600,
                           jobs=1, manifest=path)
        return path, outcome

    def test_roundtrip_and_contents(self, tmp_path):
        path, outcome = self.build(tmp_path)
        doc = load_manifest(path)
        assert doc["cells"] == 2 and not doc["failed"]
        assert len(doc["results"]) == 2
        for entry in doc["results"].values():
            assert set(entry) == {"digest", "ipc", "serve_rate", "bandwidth_bloat"}
        assert doc["counter_digest"] == counter_digest({
            "controller": outcome.counters,
            "devices": outcome.device_counters,
            "compression": outcome.compression_counters,
            "resilience": outcome.resilience_counters,
        })
        assert doc["packages"]["python"]
        assert doc["wall_s"] > 0

    def test_rerun_diffs_clean_on_identity(self, tmp_path):
        path_a, _ = self.build(tmp_path, name="a.json")
        clear_trace_cache()
        path_b, _ = self.build(tmp_path, name="b.json")
        diff = diff_manifests(load_manifest(path_a), load_manifest(path_b))
        assert diff["identity"] == []
        assert "equivalent" in format_diff(diff) or \
               format_diff(diff) == "manifests are identical"

    def test_different_plan_is_identity_difference(self, tmp_path):
        path_a, _ = self.build(tmp_path, seed=3, name="a.json")
        clear_trace_cache()
        path_b, _ = self.build(tmp_path, seed=4, name="b.json")
        diff = diff_manifests(load_manifest(path_a), load_manifest(path_b))
        assert any(entry.startswith("fingerprint") for entry in diff["identity"])
        assert "identity differences" in format_diff(diff)

    def test_checkpoint_gets_sidecar_manifest(self, tmp_path):
        config, sim_config = small_configs()
        plan = plan_cells(["YCSB-B"], ["simple"], seed=3)
        ckpt = str(tmp_path / "sweep.json")
        run_plan(plan, config, sim_config, n_accesses=600, jobs=1,
                 checkpoint=ckpt)
        doc = load_manifest(ckpt + ".manifest.json")
        assert doc["cells"] == 1

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_manifest(str(bad))
        bad.write_text('{"magic": "other"}')
        with pytest.raises(ConfigurationError, match="missing magic"):
            load_manifest(str(bad))
        bad.write_text('{"magic": "repro-run-manifest", "version": 99}')
        with pytest.raises(ConfigurationError, match="version"):
            load_manifest(str(bad))
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_manifest(str(tmp_path / "missing.json"))

    def test_counter_digest_is_order_free(self):
        from repro.common.stats import CounterGroup

        a = CounterGroup("g")
        a.inc("x", 1)
        a.inc("y", 2)
        b = CounterGroup("g")
        b.inc("y", 2)
        b.inc("x", 1)
        assert counter_digest({"g": a}) == counter_digest({"g": b})
        b.inc("x", 1)
        assert counter_digest({"g": a}) != counter_digest({"g": b})

    def test_write_is_atomic_replace(self, tmp_path):
        path = tmp_path / "m.json"
        config, sim_config = small_configs()
        plan = plan_cells(["YCSB-B"], ["simple"], seed=3)
        outcome = run_plan(plan, config, sim_config, n_accesses=600, jobs=1)
        from repro.resilience.checkpoint import plan_fingerprint

        fingerprint = plan_fingerprint(plan, 600, config, sim_config)
        doc = build_manifest(fingerprint, outcome, plan)
        write_manifest(str(path), doc)
        write_manifest(str(path), doc)  # overwrite in place
        assert load_manifest(str(path))["fingerprint"] == fingerprint
        assert not [p for p in tmp_path.iterdir() if p.name.startswith(".manifest-")]


# ----------------------------------------------------------------------- CLI
class TestTelemetryCli:
    def test_matrix_with_telemetry_flags(self, tmp_path, capsys):
        from repro.__main__ import main

        spans_path = tmp_path / "spans.jsonl"
        progress_path = tmp_path / "progress.jsonl"
        manifest_path = tmp_path / "run.manifest.json"
        code = main([
            "YCSB-B,YCSB-C", "simple,baryon", "--accesses", "1000",
            "--scale", "512", "--jobs", "2",
            "--trace-spans", str(spans_path),
            "--progress-out", str(progress_path),
            "--manifest", str(manifest_path),
        ])
        assert code == 0
        from repro.obs import load_spans

        spans = load_spans(str(spans_path))
        assert any(s["name"] == "sweep" for s in spans)
        events = [json.loads(line)
                  for line in progress_path.read_text().splitlines()]
        assert sum(e["type"] == "cell_done" for e in events) == 4
        assert load_manifest(str(manifest_path))["cells"] == 4
        assert "wrote" in capsys.readouterr().err

    def test_manifest_show_and_diff(self, tmp_path, capsys):
        from repro.__main__ import main

        manifest_path = tmp_path / "run.manifest.json"
        assert main([
            "YCSB-B,YCSB-C", "simple", "--accesses", "800", "--scale", "512",
            "--manifest", str(manifest_path),
        ]) == 0
        capsys.readouterr()
        assert main(["manifest", "show", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "YCSB-B/simple" in out
        assert main([
            "manifest", "diff", str(manifest_path), str(manifest_path),
        ]) == 0
        assert "identical" in capsys.readouterr().out

    def test_manifest_diff_exit_code_on_identity_difference(self, tmp_path, capsys):
        from repro.__main__ import main

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["YCSB-B,YCSB-C", "simple", "--accesses", "600",
                     "--scale", "512", "--manifest", str(a)]) == 0
        assert main(["YCSB-B,YCSB-C", "simple", "--accesses", "700",
                     "--scale", "512", "--manifest", str(b)]) == 0
        capsys.readouterr()
        assert main(["manifest", "diff", str(a), str(b)]) == 1
        assert "identity differences" in capsys.readouterr().out

    def test_manifest_rejects_garbage(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["manifest", "show", str(bad)]) == 2

    def test_report_matrix_metrics_includes_shards(self, capsys):
        from repro.__main__ import main

        code = main([
            "report", "YCSB-B,YCSB-C", "simple", "--accesses", "800",
            "--scale", "512", "--metrics", "--format", "prometheus",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert 'shard="0"' in out
        assert "repro_matrix_controller_total" in out


# ------------------------------------------------------- simulator progress
class TestSimulatorProgress:
    def test_progress_chunks_preserve_bit_identity(self):
        config, sim_config = small_configs()
        trace = build_workload(
            "YCSB-B", config.layout.fast_capacity, n_accesses=2000, seed=3
        )
        plain, _ = run_cell("YCSB-B", "baryon", config, sim_config,
                            n_accesses=2000, seed=3,
                            trace=trace.replay_view())
        seen = []
        chunked, _ = run_cell("YCSB-B", "baryon", config, sim_config,
                              n_accesses=2000, seed=3,
                              trace=trace.replay_view(),
                              progress=lambda done, total: seen.append((done, total)),
                              progress_every=300)
        assert chunked.to_dict() == plain.to_dict()
        assert seen, "progress callback never fired"
        dones = [d for d, _ in seen]
        assert dones == sorted(dones)
        assert seen[-1][0] == seen[-1][1]

    def test_scalar_loop_final_progress_call(self):
        from repro.analysis.experiments import build_controller
        from repro.sim.system import SystemSimulator

        config, sim_config = small_configs()
        trace = build_workload(
            "YCSB-B", config.layout.fast_capacity, n_accesses=1000, seed=3
        )
        controller = build_controller("simple", config, seed=3)
        if hasattr(controller, "oracle"):
            trace.apply_compressibility(controller.oracle)
        seen = []
        simulator = SystemSimulator(
            controller, sim_config,
            progress=lambda done, total: seen.append((done, total)),
            progress_every=300,
        )
        simulator.run(trace, name="YCSB-B", design="simple", scalar=True)
        # Stride reports every 300 accesses plus exactly one trailing
        # call for the remainder — never a duplicate (n, n).
        n = seen[-1][1]
        expected = [(done, n) for done in range(300, n + 1, 300)]
        if n % 300:
            expected.append((n, n))
        assert seen == expected
