"""Workload generators: structure, determinism, and behavioural knobs."""

import numpy as np
import pytest

from repro.common.config import Geometry
from repro.common.errors import ConfigurationError
from repro.compression.synthetic import SyntheticCompressibility
from repro.workloads import (
    DnnInferenceWorkload,
    GraphWorkload,
    PointerChaseWorkload,
    RandomWorkload,
    SpecProxyWorkload,
    StencilWorkload,
    StreamWorkload,
    WORKLOADS,
    YcsbWorkload,
    ZipfWorkload,
    build_workload,
)
from repro.workloads.spec import SPEC_PARAMS
from repro.workloads.synthetic import block_footprint

MB = 1 << 20
FOOT = 8 * MB


def basic_checks(trace, n, footprint):
    assert abs(len(trace) - n) <= n // 4
    assert int(trace.addrs.max()) < footprint
    assert (trace.addrs % 64 == 0).all()
    assert len(trace.writes) == len(trace) == len(trace.igaps) == len(trace.cores)


class TestMicroKernels:
    def test_stream_is_sequential(self):
        trace = StreamWorkload("s", FOOT, seed=1).generate(1000)
        basic_checks(trace, 1000, FOOT)
        deltas = np.diff(trace.addrs[:100].astype(np.int64))
        assert (deltas == 64).all()

    def test_random_spreads(self):
        trace = RandomWorkload("r", FOOT, seed=1).generate(2000)
        basic_checks(trace, 2000, FOOT)
        blocks = np.unique(trace.addrs // 2048)
        assert len(blocks) > 1000

    def test_zipf_popularity_skew(self):
        trace = ZipfWorkload("z", FOOT, seed=1, theta=1.1).generate(6000)
        basic_checks(trace, 6000, FOOT)
        # Popularity is drawn per super-block; skew shows at that grain.
        supers, counts = np.unique(trace.addrs // (16 * 2048), return_counts=True)
        top = np.sort(counts)[::-1]
        assert top[: max(1, len(top) // 10)].sum() > 0.3 * counts.sum()

    def test_pointer_chase_visits_widely(self):
        trace = PointerChaseWorkload("p", FOOT, seed=1).generate(3000)
        basic_checks(trace, 3000, FOOT)
        assert len(np.unique(trace.addrs)) > 2000

    def test_stencil_bounded(self):
        trace = StencilWorkload("st", FOOT, seed=1).generate(3000)
        assert int(trace.addrs.max()) < FOOT

    def test_write_fraction_controllable(self):
        trace = StreamWorkload("s", FOOT, seed=1, write_fraction=0.5).generate(4000)
        assert abs(trace.write_fraction - 0.5) < 0.05

    def test_determinism_by_seed(self):
        a = ZipfWorkload("z", FOOT, seed=9).generate(500)
        b = ZipfWorkload("z", FOOT, seed=9).generate(500)
        assert (a.addrs == b.addrs).all()
        c = ZipfWorkload("z", FOOT, seed=10).generate(500)
        assert not (a.addrs == c.addrs).all()


class TestBlockFootprint:
    def test_persistent(self):
        a = block_footprint(42, 32, 0.5, seed=1)
        b = block_footprint(42, 32, 0.5, seed=1)
        assert (a == b).all()

    def test_coverage_controls_size(self):
        small = block_footprint(7, 32, 0.25, seed=1)
        large = block_footprint(7, 32, 0.75, seed=1)
        assert len(small) < len(large)
        assert len(large) <= 32

    def test_lines_in_range(self):
        fp = block_footprint(3, 8, 0.5, seed=2)
        assert ((fp >= 0) & (fp < 8)).all()


class TestSpecProxies:
    @pytest.mark.parametrize("bench_name", sorted(SPEC_PARAMS))
    def test_each_generates(self, bench_name):
        trace = SpecProxyWorkload(bench_name, FOOT, seed=3).generate(3000)
        basic_checks(trace, 3000, FOOT)
        expected = SPEC_PARAMS[bench_name]["write_fraction"]
        assert abs(trace.write_fraction - expected) < 0.07
        assert trace.default_profile == SPEC_PARAMS[bench_name]["profile"]

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError):
            SpecProxyWorkload("999.nope", FOOT)

    def test_lbm_write_heavy(self):
        trace = SpecProxyWorkload("519.lbm_r", FOOT, seed=1).generate(2000)
        assert trace.write_fraction > 0.4


class TestGraphWorkload:
    def test_generates_and_names(self):
        trace = GraphWorkload("pr", "twitter", FOOT, seed=1).generate(3000)
        basic_checks(trace, 3000, FOOT)
        assert trace.name == "pr.twi"

    def test_cc_writes_more_than_pr(self):
        pr = GraphWorkload("pr", "twitter", FOOT, seed=1).generate(4000)
        cc = GraphWorkload("cc", "twitter", FOOT, seed=1).generate(4000)
        assert cc.write_fraction > pr.write_fraction

    def test_web_graph_more_local_than_twitter(self):
        """web-sk edges stay near the source; twitter gathers hubs."""
        def rank_spread(graph):
            trace = GraphWorkload("pr", graph, FOOT, seed=2).generate(6000)
            rank_limit = FOOT // 4
            ranks = trace.addrs[trace.addrs < rank_limit]
            return len(np.unique(ranks // 2048))

        assert rank_spread("web") != 0
        assert rank_spread("twitter") >= rank_spread("web") * 0.5

    def test_regions_attached(self):
        trace = GraphWorkload("pr", "twitter", FOOT, seed=1).generate(1000)
        assert len(trace.regions) == 2
        oracle = SyntheticCompressibility()
        trace.apply_compressibility(oracle)
        assert oracle.profile_of(0).name == "high"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GraphWorkload("bfs", "twitter", FOOT)
        with pytest.raises(ConfigurationError):
            GraphWorkload("pr", "roadnet", FOOT)


class TestDnnWorkload:
    @pytest.mark.parametrize("model", ["resnet50", "resnext50"])
    def test_generates(self, model):
        trace = DnnInferenceWorkload(model, FOOT, seed=1).generate(3000)
        basic_checks(trace, 3000, FOOT)

    def test_weights_reread_across_layers(self):
        gen = DnnInferenceWorkload("resnet50", FOOT, seed=1)
        trace = gen.generate(8000)
        weight_accesses = trace.addrs[trace.addrs < gen.weight_bytes]
        assert len(weight_accesses) > len(trace) // 3

    def test_activation_region_zero_heavy(self):
        trace = DnnInferenceWorkload("resnet50", FOOT, seed=1).generate(500)
        profiles = {name for _, _, name in trace.regions}
        assert "zero_heavy" in profiles

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError):
            DnnInferenceWorkload("vgg", FOOT)


class TestYcsb:
    def test_write_mix_a_vs_b(self):
        a = YcsbWorkload("A", FOOT, seed=1).generate(5000)
        b = YcsbWorkload("B", FOOT, seed=1).generate(5000)
        assert a.write_fraction > 0.3
        assert b.write_fraction < 0.1

    def test_records_read_sequentially(self):
        trace = YcsbWorkload("B", FOOT, seed=1).generate(2000)
        gen = YcsbWorkload("B", FOOT, seed=1)
        in_values = trace.addrs[trace.addrs >= gen.index_bytes]
        deltas = np.diff(in_values[:17].astype(np.int64))
        assert (deltas[deltas > 0] == 64).any()

    def test_zipf_hot_records(self):
        gen = YcsbWorkload("B", FOOT, seed=1)
        trace = gen.generate(8000)
        values = trace.addrs[trace.addrs >= gen.index_bytes]
        recs, counts = np.unique((values - gen.index_bytes) // 1024, return_counts=True)
        top = np.sort(counts)[::-1]
        assert top[: max(1, len(top) // 20)].sum() > 0.2 * counts.sum()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            YcsbWorkload("D", FOOT)

    def test_ycsb_c_is_read_only(self):
        trace = YcsbWorkload("C", FOOT, seed=1).generate(2000)
        assert trace.write_fraction == 0.0


class TestRegistry:
    def test_all_registered_workloads_build(self):
        for name in WORKLOADS:
            trace = build_workload(name, 4 * MB, n_accesses=800, seed=2)
            assert len(trace) > 0
            assert trace.footprint_bytes >= 4 * MB

    def test_footprint_scales_with_fast_capacity(self):
        small = build_workload("YCSB-A", 4 * MB, n_accesses=100)
        large = build_workload("YCSB-A", 8 * MB, n_accesses=100)
        assert large.footprint_bytes == 2 * small.footprint_bytes

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            build_workload("nonexistent", 4 * MB)

    def test_trace_slice(self):
        trace = build_workload("YCSB-B", 4 * MB, n_accesses=1000)
        part = trace.slice(10, 20)
        assert len(part) == 10
        assert part.addrs[0] == trace.addrs[10]
