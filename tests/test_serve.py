"""The serve package — job specs, the fingerprint-keyed result cache,
the async HTTP job server — plus the PR 9 correctness fixes: versioned
plan fingerprints, progress rate/ETA accounting, temp-file hygiene."""

import asyncio
import dataclasses
import json
import os
import threading

import pytest

from repro.common.config import ResilienceConfig
from repro.common.errors import ConfigurationError
from repro.common.fsio import durable_replace, remove_stale_temps
from repro.obs.progress import ProgressTracker
from repro.parallel import CellExecutor, clear_trace_cache, plan_cells, run_plan
from repro.resilience import ChaosPlan, cell_fingerprint, plan_fingerprint
from repro.serve import JobSpec, ResultCache, build_configs
from repro.serve.jobs import Job, run_job
from repro.serve.server import JobServer
from repro.serve.client import ServeClient, ServeError

from tests.conftest import make_small_config, make_small_sim_config

WORKLOADS = ["YCSB-B"]
DESIGNS = ["simple", "baryon"]
N_ACCESSES = 600


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def _plan():
    return plan_cells(WORKLOADS, DESIGNS, seed=3)


# ---------------------------------------------------------------------------
# Satellite 1: versioned plan fingerprints
# ---------------------------------------------------------------------------


class TestFingerprintV2:
    """Worker chaos and quarantine knobs change which counter outcomes a
    checkpoint can contain, so they must be part of its identity — while
    old clean checkpoints keep resuming under the unversioned digest."""

    def setup_method(self):
        self.config = make_small_config()
        self.sim = make_small_sim_config()

    def _fp(self, **kwargs):
        return plan_fingerprint(
            _plan(), N_ACCESSES, self.config, self.sim, **kwargs
        )

    def test_clean_fingerprint_stays_bare_v1(self):
        fingerprint = self._fp()
        assert not fingerprint.startswith("v")
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # pure hex: the seed format, unchanged

    def test_worker_chaos_versions_and_flips_the_fingerprint(self):
        chaotic = self._fp(chaos=ChaosPlan(p_kill_worker=0.2))
        assert chaotic.startswith("v2:")
        assert chaotic != self._fp()

    def test_chaos_seed_is_part_of_the_identity(self):
        a = self._fp(chaos=ChaosPlan(seed=1, p_kill_worker=0.2))
        b = self._fp(chaos=ChaosPlan(seed=2, p_kill_worker=0.2))
        assert a != b

    def test_write_effect_chaos_keeps_the_clean_identity(self):
        # Torn/flipped/ENOSPC writes damage the *file*, which digests and
        # salvage already guard; they never change what a cell computes.
        chaos = ChaosPlan(
            p_torn_checkpoint=0.5, p_flip_checkpoint=0.5, p_enospc=0.5,
            p_delay_drain=0.5,
        )
        assert self._fp(chaos=chaos) == self._fp()

    def test_interrupt_only_chaos_keeps_the_clean_identity(self):
        # An interrupt changes when a run stops, not what any cell
        # produced — the chaos-soak resumes run 2's checkpoint without
        # the interrupt knob and must keep matching.
        chaos = ChaosPlan(interrupt_after_cells=2)
        assert self._fp(chaos=chaos) == self._fp()

    def test_quarantine_knob_flips_the_fingerprint(self):
        guarded = self._fp(quarantine_after=3)
        assert guarded.startswith("v2:")
        assert guarded != self._fp()
        assert guarded != self._fp(quarantine_after=4)

    def test_fault_spec_flips_via_config_repr(self):
        # --faults lives in BaryonConfig.resilience, which config!r
        # already covers; prove the coverage instead of double-hashing.
        faulty = dataclasses.replace(
            self.config,
            resilience=ResilienceConfig(enabled=True, p_read_transient=0.01),
        )
        assert plan_fingerprint(_plan(), N_ACCESSES, faulty, self.sim) \
            != self._fp()

    def test_cell_fingerprint_separates_every_axis(self):
        base = cell_fingerprint(
            "YCSB-B", "baryon", 1, N_ACCESSES, self.config, self.sim)
        assert base == cell_fingerprint(
            "YCSB-B", "baryon", 1, N_ACCESSES, self.config, self.sim)
        others = {
            cell_fingerprint("YCSB-A", "baryon", 1, N_ACCESSES,
                             self.config, self.sim),
            cell_fingerprint("YCSB-B", "simple", 1, N_ACCESSES,
                             self.config, self.sim),
            cell_fingerprint("YCSB-B", "baryon", 2, N_ACCESSES,
                             self.config, self.sim),
            cell_fingerprint("YCSB-B", "baryon", 1, N_ACCESSES + 1,
                             self.config, self.sim),
        }
        assert base not in others and len(others) == 4


# ---------------------------------------------------------------------------
# Satellite 2: progress rate/ETA accounting
# ---------------------------------------------------------------------------


def _beat(cell, done, total, rate):
    return {
        "type": "heartbeat", "cell": cell, "workload": "w", "design": "d",
        "seed": 1, "attempt": 1, "done": done, "total": total,
        "elapsed_s": 1.0, "accesses_per_s": rate, "pid": 1, "ts": 0.0,
    }


class TestProgressAccounting:
    def test_finished_unreaped_cell_excluded_from_rate(self):
        # A cell's last heartbeat (done == total) lingers in the running
        # map until the parent reaps the payload; its rate must not
        # inflate the aggregate nor drag the ETA negative.
        tracker = ProgressTracker(total_cells=2)
        tracker.on_event(_beat(0, 1000, 1000, 50_000.0))   # finished, unreaped
        tracker.on_event(_beat(1, 500, 1000, 250.0))       # genuinely running
        assert tracker.aggregate_rate() == pytest.approx(250.0)
        eta = tracker.eta_s()
        assert eta is not None and eta == pytest.approx(500 / 250.0)

    def test_eta_never_negative_across_a_full_sequence(self):
        tracker = ProgressTracker(total_cells=2)
        for done in (250, 500, 750, 1000):
            tracker.on_event(_beat(0, done, 1000, 1000.0))
            tracker.on_event(_beat(1, done, 1000, 1000.0))
            eta = tracker.eta_s()
            assert eta is None or eta >= 0.0
        tracker.on_event({"type": "cell_done", "cell": 0, "workload": "w",
                          "design": "d", "seed": 1, "attempt": 1,
                          "elapsed_s": 1.0, "ts": 0.0})
        eta = tracker.eta_s()
        assert eta is None or eta >= 0.0

    def test_only_finished_beats_means_no_rate_and_no_eta(self):
        tracker = ProgressTracker(total_cells=1)
        tracker.on_event(_beat(0, 1000, 1000, 9000.0))
        assert tracker.aggregate_rate() == 0.0
        assert tracker.eta_s() is None

    def test_snapshot_is_json_safe_and_complete(self):
        tracker = ProgressTracker(total_cells=3)
        tracker.on_event(_beat(1, 200, 1000, 400.0))
        snap = tracker.snapshot()
        json.dumps(snap)
        assert snap["total_cells"] == 3
        assert snap["running_cells"] == 1
        assert snap["running"][0]["cell"] == 1
        assert snap["running"][0]["done"] == 200
        assert snap["aggregate_rate"] == pytest.approx(400.0)


# ---------------------------------------------------------------------------
# Satellite 3: temp-file hygiene
# ---------------------------------------------------------------------------


class TestTempHygiene:
    def test_durable_replace_unlinks_temp_on_every_failure(self, tmp_path):
        target = tmp_path / "out.bin"

        def explode(fd, tmp):
            raise OSError(28, "No space left on device")

        with pytest.raises(OSError):
            durable_replace(str(target), b"payload", mutate=explode)
        assert not target.exists()
        assert [p.name for p in tmp_path.iterdir()] == []

    def test_temps_carry_the_tmp_suffix(self, tmp_path):
        seen = {}

        def peek(fd, tmp):
            seen["tmp"] = tmp

        durable_replace(
            str(tmp_path / "out.bin"), b"x",
            prefix=".checkpoint-", mutate=peek,
        )
        name = os.path.basename(seen["tmp"])
        assert name.startswith(".checkpoint-") and name.endswith(".tmp")

    def test_remove_stale_temps_matches_prefixes_only(self, tmp_path):
        for name in (".checkpoint-abc.tmp", ".manifest-xyz.tmp",
                     ".other-1.tmp", "data.ckpt"):
            (tmp_path / name).write_bytes(b"")
        removed = remove_stale_temps(
            str(tmp_path / "data.ckpt"), (".checkpoint-", ".manifest-"),
        )
        assert sorted(removed) == [".checkpoint-abc.tmp", ".manifest-xyz.tmp"]
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            ".other-1.tmp", "data.ckpt",
        ]

    def test_failed_cells_leave_no_stray_temps(self, tmp_path, monkeypatch):
        import repro.parallel.runner as runner

        original = runner._execute_cell

        def explode(cell, config, sim_config, n_accesses, attempt=1):
            if cell.design == "baryon":
                raise ValueError("synthetic failure")
            return original(cell, config, sim_config, n_accesses, attempt)

        monkeypatch.setattr(runner, "_execute_cell", explode)
        checkpoint = tmp_path / "run.ckpt"
        outcome = run_plan(
            _plan(), make_small_config(), make_small_sim_config(),
            n_accesses=N_ACCESSES, max_attempts=1,
            checkpoint=str(checkpoint),
        )
        assert outcome.failed
        stray = [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert stray == []

    def test_run_start_sweeps_stale_temps(self, tmp_path):
        checkpoint = tmp_path / "run.ckpt"
        (tmp_path / ".checkpoint-dead0.tmp").write_bytes(b"half a write")
        (tmp_path / ".manifest-dead1.tmp").write_bytes(b"")
        outcome = run_plan(
            _plan(), make_small_config(), make_small_sim_config(),
            n_accesses=N_ACCESSES, checkpoint=str(checkpoint),
        )
        assert outcome.orchestration.get("stale_temps_removed") == 2
        stray = [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert stray == []


# ---------------------------------------------------------------------------
# The result cache
# ---------------------------------------------------------------------------


class TestResultCache:
    KEY = "ab" + "0" * 62

    def test_roundtrip_and_miss_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get(self.KEY) is None
        payload = {"index": 5, "result": {"name": "w", "cycles": 123.5}}
        assert cache.put(self.KEY, payload)
        got = cache.get(self.KEY)
        assert got["result"] == payload["result"]
        assert got["index"] == 0  # normalized: entries are plan-agnostic
        assert len(cache) == 1
        assert cache.stats.get("miss") == 1 and cache.stats.get("hit") == 1

    def test_corrupt_entry_dropped_not_served(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(self.KEY, {"index": 0, "result": {"cycles": 1.0}})
        path = cache.entry_path(self.KEY)
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0xFF  # flip a payload byte
        with open(path, "wb") as sink:
            sink.write(raw)
        assert cache.get(self.KEY) is None
        assert cache.stats.get("corrupt_dropped") == 1
        assert not os.path.exists(path)
        assert len(cache) == 0

    def test_capacity_prunes_oldest(self, tmp_path):
        cache = ResultCache(str(tmp_path), capacity_entries=2)
        keys = [f"{i:02x}" + "0" * 62 for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, {"index": 0, "result": {"i": i}})
            os.utime(cache.entry_path(key), (1000 + i, 1000 + i))
        assert len(cache) == 2
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[2]) is not None
        assert cache.stats.get("evicted") == 1


# ---------------------------------------------------------------------------
# Job specs and config materialization
# ---------------------------------------------------------------------------


class TestJobSpec:
    GOOD = {"workloads": ["YCSB-B"], "designs": ["baryon"],
            "n_accesses": 500, "scale": 64}

    def test_roundtrip(self):
        spec = JobSpec.from_dict(dict(
            self.GOOD, seeds=[1, 2],
            overrides={"stage": {"size_bytes": 262144}},
        ))
        assert JobSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("bad", [
        {"workloads": ["nope"], "designs": ["baryon"]},
        {"workloads": ["YCSB-B"], "designs": ["nope"]},
        {"workloads": [], "designs": ["baryon"]},
        {"workloads": ["YCSB-B"], "designs": ["baryon"], "n_accesses": 0},
        {"workloads": ["YCSB-B"], "designs": ["baryon"], "bogus": 1},
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ConfigurationError):
            JobSpec.from_dict(bad)

    def test_build_configs_applies_overrides(self):
        spec = JobSpec.from_dict(dict(self.GOOD, overrides={
            "layout": {"fast_capacity": 2 << 20, "slow_capacity": 16 << 20},
            "stage": {"size_bytes": 131072},
            "compression_enabled": False,
        }, sim_overrides={"warmup_fraction": 0.25}))
        config, sim_config = build_configs(spec)
        assert config.layout.fast_capacity == 2 << 20
        assert config.stage.size_bytes == 131072
        assert config.compression_enabled is False
        assert sim_config.warmup_fraction == 0.25

    def test_build_configs_rejects_unknown_override(self):
        spec = JobSpec.from_dict(dict(self.GOOD, overrides={"bogus": 1}))
        with pytest.raises(ConfigurationError):
            build_configs(spec)


# ---------------------------------------------------------------------------
# run_job: the cache contract (ISSUE satellite 4)
# ---------------------------------------------------------------------------


def _run_one_job(tmp_path, cache, name, spec_dict):
    spec = JobSpec.from_dict(spec_dict)
    job = Job(id=name, spec=spec, workdir=str(tmp_path / name))
    with CellExecutor(jobs=1) as executor:
        outcome = run_job(job, executor, cache, threading.Event())
    return job, outcome


class TestRunJobCaching:
    SPEC = {"workloads": ["YCSB-B"], "designs": ["simple", "baryon"],
            "n_accesses": N_ACCESSES, "scale": 64}

    def test_second_identical_job_served_entirely_from_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job1, out1 = _run_one_job(tmp_path, cache, "a", self.SPEC)
        assert job1.cache_hits == 0 and not out1.failed
        job2, out2 = _run_one_job(tmp_path, cache, "b", self.SPEC)
        assert job2.cache_hits == len(job2.plan) == 2
        # Bit-identical: merged counters and every per-cell record.
        assert out2.counters.as_dict() == out1.counters.as_dict()
        assert out2.device_counters.as_dict() == out1.device_counters.as_dict()
        assert out2.compression_counters.as_dict() \
            == out1.compression_counters.as_dict()
        records1 = [r["result"] for r in job1.result_records()]
        records2 = [r["result"] for r in job2.result_records()]
        assert records1 == records2
        assert all(r["cached"] for r in job2.result_records())
        assert out2.resumed == 2

    def test_fingerprint_mismatch_forces_full_rerun(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        _run_one_job(tmp_path, cache, "a", self.SPEC)
        changed = dict(self.SPEC, n_accesses=N_ACCESSES + 100)
        job2, out2 = _run_one_job(tmp_path, cache, "b", changed)
        assert job2.cache_hits == 0
        assert not out2.failed and out2.resumed == 0

    def test_corrupted_cache_entry_recomputed_transparently(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job1, out1 = _run_one_job(tmp_path, cache, "a", self.SPEC)
        victim = cache.entry_path(job1.cell_keys[0])
        raw = bytearray(open(victim, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        with open(victim, "wb") as sink:
            sink.write(raw)
        job2, out2 = _run_one_job(tmp_path, cache, "b", self.SPEC)
        assert job2.cache_hits == 1  # the undamaged cell still hits
        assert not out2.failed
        assert out2.counters.as_dict() == out1.counters.as_dict()
        assert [r["result"] for r in job2.result_records()] \
            == [r["result"] for r in job1.result_records()]


# ---------------------------------------------------------------------------
# The shared executor
# ---------------------------------------------------------------------------


class TestCellExecutor:
    def test_reuse_across_runs_matches_private_runs(self):
        config, sim = make_small_config(), make_small_sim_config()
        reference = run_plan(_plan(), config, sim, n_accesses=N_ACCESSES)
        with CellExecutor(jobs=1) as executor:
            first = run_plan(_plan(), config, sim, n_accesses=N_ACCESSES,
                             executor=executor)
            second = run_plan(_plan(), config, sim, n_accesses=N_ACCESSES,
                              executor=executor)
        for outcome in (first, second):
            assert outcome.counters.as_dict() == reference.counters.as_dict()
            assert {k: r.to_dict() for k, r in outcome.results.items()} \
                == {k: r.to_dict() for k, r in reference.results.items()}

    def test_closed_executor_rejected(self):
        executor = CellExecutor(jobs=1)
        executor.close()
        with pytest.raises(ConfigurationError):
            run_plan(_plan(), make_small_config(), make_small_sim_config(),
                     n_accesses=N_ACCESSES, executor=executor)


# ---------------------------------------------------------------------------
# The HTTP layer, end to end on an ephemeral port
# ---------------------------------------------------------------------------


class _ServerThread:
    """Run a JobServer's asyncio loop on a daemon thread for tests."""

    def __init__(self, **kwargs):
        self.server = JobServer(host="127.0.0.1", port=0, **kwargs)
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10), "server did not come up"

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        await self.server.serve(
            install_signal_handlers=False,
            on_ready=lambda _s: self._ready.set(),
        )

    @property
    def url(self):
        return f"http://127.0.0.1:{self.server.port}"

    def drain(self):
        self._loop.call_soon_threadsafe(self.server.begin_drain)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server failed to drain"


class TestHttpServer:
    SPEC = {"workloads": ["YCSB-B"], "designs": ["simple", "baryon"],
            "n_accesses": N_ACCESSES, "scale": 64}

    def test_end_to_end_submit_cache_metrics_drain(self, tmp_path):
        harness = _ServerThread(workdir=str(tmp_path))
        try:
            client = ServeClient(harness.url, timeout_s=30)
            assert client.healthz() == {"ok": True, "draining": False}

            cold = client.run(self.SPEC, timeout_s=120)
            assert cold["status"]["state"] == "done"
            assert cold["status"]["cache_hits"] == 0
            assert len(cold["records"]) == 2

            warm = client.run(self.SPEC, timeout_s=120)
            assert warm["status"]["cache_hits"] == 2
            assert [r["result"] for r in warm["records"]] \
                == [r["result"] for r in cold["records"]]
            assert all(r["cached"] for r in warm["records"])

            with pytest.raises(ServeError) as err:
                client.submit({"workloads": ["nope"], "designs": ["baryon"]})
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.job("job-999999")
            assert err.value.status == 404

            metrics = client.metrics()
            assert 'repro_serve_events_total{event="jobs_done"} 2' in metrics
            assert 'repro_serve_cache_total{event="hit"} 2' in metrics
        finally:
            harness.drain()
        assert harness.server.executor.closed

    def test_draining_server_rejects_new_jobs(self, tmp_path):
        harness = _ServerThread(workdir=str(tmp_path))
        client = ServeClient(harness.url, timeout_s=30)
        # Flip the drain flag without tearing the socket down yet, then
        # observe the 503 before letting the shutdown complete.
        harness.server.draining = True
        with pytest.raises(ServeError) as err:
            client.submit(self.SPEC)
        assert err.value.status == 503
        harness.server.draining = False
        harness.drain()
