"""Base-Delta-Immediate compression: encodings and round-trips."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.bdi import BdiCompressor


@pytest.fixture(scope="module")
def bdi():
    return BdiCompressor()


def qwords(*values):
    return b"".join(struct.pack(">q", v) for v in values)


class TestSpecialCases:
    def test_all_zeros(self, bdi):
        data = bytes(64)
        result = bdi.compress(data)
        assert result.compressed_bits == 4  # header only
        assert bdi.decompress(result) == data

    def test_repeated_qword(self, bdi):
        data = struct.pack(">Q", 0xDEADBEEFCAFEF00D) * 8
        result = bdi.compress(data)
        assert result.compressed_bits == 4 + 64
        assert bdi.decompress(result) == data

    def test_raw_fallback_roundtrips(self, bdi):
        # Values that fit no delta configuration.
        import os

        data = os.urandom(64)
        result = bdi.compress(data)
        assert bdi.decompress(result) == data
        assert result.compressed_bits >= 64 * 8


class TestBaseDelta:
    def test_base8_delta1(self, bdi):
        base = 1 << 40
        data = qwords(*(base + d for d in (0, 5, -7, 100, -100, 3, 1, 0)))
        result = bdi.compress(data)
        assert bdi.decompress(result) == data
        # header + base(64) + mask(8) + 8 deltas x 8 bits = 140 bits
        assert result.compressed_bits == 4 + 64 + 8 + 64

    def test_zero_base_mixes_with_live_base(self, bdi):
        # Small immediates ride the zero base; pointers share one base.
        base = 1 << 40
        data = qwords(base, 3, base + 10, -5, base - 2, 0, 7, base + 90)
        result = bdi.compress(data)
        assert bdi.decompress(result) == data
        assert result.compressed_bits < 64 * 8 // 2  # compresses 2x+

    def test_base4_delta1(self, bdi):
        base = 0x12340000
        values = [(base + d) & 0xFFFFFFFF for d in (0, 1, 2, 3, 4, 5, 6, 7)]
        data = b"".join(struct.pack(">I", v) for v in values)
        result = bdi.compress(data)
        assert bdi.decompress(result) == data
        assert result.compressed_bits <= 4 + 32 + 8 + 8 * 8

    def test_base2_delta1(self, bdi):
        values = [0x4000 + d for d in range(32)]
        data = b"".join(struct.pack(">H", v) for v in values)
        result = bdi.compress(data)
        assert bdi.decompress(result) == data

    def test_delta_overflow_falls_back(self, bdi):
        # Two far-apart bases defeat every (k, d) configuration.
        data = qwords(1 << 40, 1 << 20, (1 << 40) + (1 << 30), 5)
        result = bdi.compress(data)
        assert bdi.decompress(result) == data


class TestValidation:
    def test_rejects_empty(self, bdi):
        with pytest.raises(ValueError):
            bdi.compress(b"")

    def test_rejects_non_multiple_of_8(self, bdi):
        with pytest.raises(ValueError):
            bdi.compress(b"1234")

    def test_picks_smallest_encoding(self, bdi):
        data = bytes(64)
        assert bdi.compress(data).compressed_bits == 4


@settings(max_examples=150, deadline=None)
@given(st.binary(min_size=8, max_size=256).filter(lambda b: len(b) % 8 == 0))
def test_roundtrip_arbitrary(data):
    bdi = BdiCompressor()
    assert bdi.decompress(bdi.compress(data)) == data


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=(1 << 62)),
    st.lists(st.integers(min_value=-120, max_value=120), min_size=2, max_size=16),
)
def test_base_delta_compresses(base, deltas):
    """Clustered values always compress below raw size."""
    bdi = BdiCompressor()
    data = qwords(*((base + d) & ((1 << 63) - 1) for d in deltas))
    result = bdi.compress(data)
    assert bdi.decompress(result) == data
    assert result.compressed_bits < len(data) * 8
