"""Fuzzed invariant checks over the controller's full state machine.

These drive random access streams through every mode and assert the
paper's structural rules after the run:

* Rule 1 — a stage physical block only holds one super-block's data
  (guaranteed by construction: slots carry BlkOffs under one tag);
* Rule 2 — every staged/committed range is contiguous and CF-aligned;
* Rule 3 — all of a block's staged ranges live in one physical block, and
  all its committed sub-blocks share one pointer;
* Rule 4 — committed layouts yield dense, collision-free slot positions;
* capacity — committed slot usage never exceeds the physical block;
* consistency — the remap table and the fast-area state agree exactly.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CommitConfig
from repro.core import BaryonController
from repro.metadata.remap import locate_sub_block

from tests.conftest import make_small_config


def check_invariants(ctrl):
    g = ctrl.geometry
    n_subs = g.sub_blocks_per_block

    # --- stage area ---------------------------------------------------
    for set_index in range(ctrl.stage.num_sets):
        ranks = []
        for way in range(ctrl.stage.ways):
            entry = ctrl.stage.entry(set_index, way)
            if not entry.valid:
                continue
            ranks.append(entry.lru)
            covered_per_block = {}
            for slot in entry.slots:
                if slot is None:
                    continue
                if not slot.zero:
                    assert slot.sub_start % slot.cf == 0, "Rule 2 alignment"
                covered = covered_per_block.setdefault(slot.blk_off, set())
                span = set(slot.sub_blocks)
                assert not (covered & span), "overlapping staged ranges"
                covered |= span
        assert sorted(ranks) == list(range(len(ranks))), "dense LRU ranks"

    # Rule 3 in the stage: each (super, blk_off) maps to at most one way.
    seen = {}
    for set_index in range(ctrl.stage.num_sets):
        for way in range(ctrl.stage.ways):
            entry = ctrl.stage.entry(set_index, way)
            if not entry.valid:
                continue
            for blk_off in entry.blocks_present():
                key = (set_index, entry.tag, blk_off)
                assert key not in seen, "Rule 3: block staged in two ways"
                seen[key] = way

    # --- committed area vs remap table ---------------------------------
    for set_index in range(ctrl.fast_area.num_sets):
        for way in range(ctrl.fast_area.ways):
            state = ctrl.fast_area.state(set_index, way)
            if state is None:
                continue
            base = state.super_id * g.super_block_blocks
            entries = [
                ctrl.remap_table.get(base + off)
                for off in range(g.super_block_blocks)
            ]
            slots_used = 0
            positions = []
            for off, entry in enumerate(entries):
                if off in state.committed:
                    assert entry.is_remapped, "fast area tracks unmapped block"
                    assert entry.pointer == way, "Rule 3 pointer mismatch"
                    slots_used += entry.occupied_slots()
                    for start, _cf in entry.ranges():
                        positions.append(locate_sub_block(entries, off, start))
                else:
                    assert (
                        not entry.is_remapped or entry.pointer != way
                    ), "remap points into untracked physical block"
            assert slots_used == state.slots_used, "slot accounting drift"
            assert slots_used <= n_subs, "physical block overfull"
            assert sorted(positions) == list(range(len(positions))), (
                "Rule 4: committed layout must be dense and sorted"
            )

    # Every remapped block must be tracked by exactly one fast block.
    for block_id in ctrl.remap_table.remapped_blocks():
        super_id = block_id // g.super_block_blocks
        blk_off = block_id % g.super_block_blocks
        assert ctrl.fast_area.find_block(super_id, blk_off) is not None


def drive(ctrl, n, seed, footprint_bytes, write_fraction=0.3, hot_fraction=0.5):
    rng = random.Random(seed)
    for _ in range(n):
        if rng.random() < hot_fraction:
            addr = rng.randrange(footprint_bytes // 8)
        else:
            addr = rng.randrange(footprint_bytes)
        ctrl.access((addr // 64) * 64, rng.random() < write_fraction)


MODES = {
    "cache": dict(),
    "flat": dict(flat=1.0),
    "fa-flat": dict(flat=1.0, fully_associative=True),
    "no-stage": dict(stage_enabled=False),
}


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("k", [0.0, 4.0])
def test_invariants_after_fuzz(mode, k):
    config = make_small_config(**MODES[mode], commit=CommitConfig(k=k))
    ctrl = BaryonController(config, seed=11)
    footprint = 4 * config.layout.fast_capacity
    drive(ctrl, 4000, seed=mode.__hash__() & 0xFFFF | 1, footprint_bytes=footprint)
    check_invariants(ctrl)
    assert ctrl.stats.get("accesses") == 4000


@pytest.mark.parametrize("mode", sorted(MODES))
def test_invariants_commit_all(mode):
    config = make_small_config(**MODES[mode], commit=CommitConfig(commit_all=True))
    ctrl = BaryonController(config, seed=5)
    drive(ctrl, 4000, seed=77, footprint_bytes=4 * config.layout.fast_capacity)
    check_invariants(ctrl)


def test_invariants_write_heavy():
    ctrl = BaryonController(make_small_config(), seed=3)
    drive(
        ctrl,
        5000,
        seed=13,
        footprint_bytes=4 * ctrl.config.layout.fast_capacity,
        write_fraction=0.8,
    )
    check_invariants(ctrl)
    # Write-heavy streams must produce writebacks, not lose dirty data.
    assert (
        ctrl.stats.get("stage_dirty_writebacks")
        + ctrl.stats.get("commit_dirty_writebacks")
        > 0
    )


def test_invariants_64b_variant():
    config = make_small_config().with_sub_block_size(64)
    ctrl = BaryonController(config, seed=9)
    drive(ctrl, 3000, seed=21, footprint_bytes=4 * config.layout.fast_capacity)
    check_invariants(ctrl)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1 << 16))
def test_invariants_hypothesis_seeds(seed):
    ctrl = BaryonController(make_small_config(stage_kb=64, fast_mb=2), seed=seed % 7 + 1)
    drive(ctrl, 1500, seed=seed, footprint_bytes=8 * ctrl.config.layout.fast_capacity)
    check_invariants(ctrl)


def test_compressed_writeback_off_still_consistent():
    import dataclasses

    config = dataclasses.replace(make_small_config(), compressed_writeback=False)
    ctrl = BaryonController(config, seed=4)
    drive(ctrl, 3000, seed=6, footprint_bytes=4 * config.layout.fast_capacity)
    check_invariants(ctrl)
    assert not ctrl._cf_hints


def test_two_level_disabled_still_consistent():
    import dataclasses

    config = dataclasses.replace(make_small_config(), two_level_replacement=False)
    ctrl = BaryonController(config, seed=4)
    drive(ctrl, 3000, seed=8, footprint_bytes=4 * config.layout.fast_capacity)
    check_invariants(ctrl)
