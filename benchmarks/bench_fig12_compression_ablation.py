"""Fig. 12 — impact of the compression-scheme choices.

Ablates, per representative workload, the paper's four comparisons:

* ``no-Z``        — zero-block (Z bit) support disabled;
* ``no-CA``       — cacheline-aligned compression disabled: whole slots
                    must be fetched and decompressed (Fig. 7 left), which
                    always loses despite the higher raw CF;
* ``0cyc-decomp`` — decompression latency 0 instead of 5 cycles (<1%);
* ``ideal-CF``    — the idealized metadata without the same-CF range
                    restriction (approximated by boosting the oracle's fit
                    probabilities; an upper bound).

Also reports the Sec. III-F compressed-writeback optimization (the paper:
7.2% bandwidth, 3.1% performance).
"""

import dataclasses

from repro.analysis import build_controller
from repro.common.config import CompressionConfig
from repro.compression.synthetic import SyntheticCompressibility
from repro.sim import SystemSimulator
from repro.workloads import build_workload

from common import N_ACCESSES, bench_system, bench_workloads, emit


def run_variant(workload, config, sim_config, cf_boost=1.0, seed=1):
    trace = build_workload(
        workload, config.layout.fast_capacity, n_accesses=N_ACCESSES, seed=seed
    )
    ctrl = build_controller("baryon", config, seed=seed)
    ctrl.oracle = SyntheticCompressibility(seed=seed, cf_boost=cf_boost)
    trace.apply_compressibility(ctrl.oracle)
    return SystemSimulator(ctrl, sim_config).run(trace, name=workload)


def run_fig12():
    config, sim_config = bench_system()
    comp = config.compression
    variants = {
        "baryon": (config, 1.0),
        "no-Z": (
            dataclasses.replace(
                config,
                compression=dataclasses.replace(comp, zero_block_support=False),
            ),
            1.0,
        ),
        "no-CA": (
            dataclasses.replace(
                config,
                compression=dataclasses.replace(comp, cacheline_aligned=False),
            ),
            1.0,
        ),
        "0cyc-decomp": (
            dataclasses.replace(
                config,
                compression=dataclasses.replace(
                    comp, decompression_latency_cycles=0
                ),
            ),
            1.0,
        ),
        "ideal-CF": (config, 1.35),
        "no-compr-wb": (
            dataclasses.replace(config, compressed_writeback=False),
            1.0,
        ),
    }
    order = list(variants)
    lines = ["Fig. 12: compression-scheme ablations (IPC normalized to Baryon)"]
    lines.append("workload".ljust(18) + "".join(v.rjust(13) for v in order))
    for workload in bench_workloads():
        results = {
            name: run_variant(workload, cfg, sim_config, boost)
            for name, (cfg, boost) in variants.items()
        }
        base = results["baryon"].ipc
        row = workload.ljust(18)
        for name in order:
            row += f"{results[name].ipc / base:.3f}".rjust(13)
        lines.append(row)

    # The paper's companion CF bars: expected quantized CF per workload
    # under the cacheline-aligned restriction and without it.
    from repro.compression.synthetic import PROFILE_LIBRARY
    from repro.workloads.suite import WORKLOADS

    lines.append("")
    lines.append("Average compression factor (profile expectation)")
    lines.append(f"{'workload':<18} {'with CA-compr':>14} {'w/o CA-compr':>14}")
    for workload in bench_workloads():
        profile = PROFILE_LIBRARY[WORKLOADS[workload].profile]
        lines.append(
            f"{workload:<18} {profile.expected_cf(True):>14.2f}"
            f" {profile.expected_cf(False):>14.2f}"
        )
    return "\n".join(lines)


def test_fig12_compression_ablation(benchmark):
    text = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    emit("fig12_compression_ablation", text)
    assert "ideal-CF" in text
