"""Sec. IV-B — memory-system energy comparison.

The paper reports Baryon reducing energy 31.9% vs Unison Cache and 13.0%
vs DICE, and Baryon-FA 14.5% vs Hybrid2, with savings tracking the
traffic reductions (slow-memory writes cost 21 pJ/bit, reads 14, fast
memory 5). This bench prints total memory energy normalized to Simple
(cache mode) and to Hybrid2 (flat mode) — lower is better.
"""

from repro.analysis import run_matrix
from repro.analysis.report import geomean_row

from common import CACHE_DESIGNS, FLAT_DESIGNS, N_ACCESSES, bench_system, bench_workloads, emit


def run_energy():
    config, sim_config = bench_system()
    workloads = bench_workloads()
    designs = CACHE_DESIGNS + FLAT_DESIGNS
    matrix = run_matrix(workloads, designs, config, sim_config, n_accesses=N_ACCESSES)
    lines = ["Energy (J per measured window, normalized; lower is better)"]
    lines.append("workload".ljust(18) + "".join(d.rjust(11) for d in designs))
    norm = {}
    for wl in workloads:
        base = matrix[(wl, "simple")].energy.total_j
        row = wl.ljust(18)
        for design in designs:
            value = matrix[(wl, design)].energy.total_j / base
            norm[(wl, design)] = value
            row += f"{value:.3f}".rjust(11)
        lines.append(row)
    gmean = geomean_row(norm, designs)
    lines.append(
        "geomean".ljust(18) + "".join(f"{gmean[d]:.3f}".rjust(11) for d in designs)
    )
    return "\n".join(lines), matrix


def test_energy_comparison(benchmark):
    text, matrix = benchmark.pedantic(run_energy, rounds=1, iterations=1)
    emit("energy", text)
    for result in matrix.values():
        assert result.energy.total_j > 0
