"""Shared infrastructure for the figure-reproduction benchmarks.

Every ``bench_fig*.py`` regenerates one table/figure of the paper at a
scaled configuration (see DESIGN.md for the substitution argument) and

* prints the table to stdout (visible with ``pytest -s``), and
* appends it to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.

Environment knobs:

* ``REPRO_BENCH_SCALE``    — capacity scale divisor (default 256);
* ``REPRO_BENCH_ACCESSES`` — trace length per cell (default 30000);
* ``REPRO_BENCH_FULL=1``   — run all 12 workloads instead of the
  representative per-domain subset.
"""

from __future__ import annotations

import os
import pathlib
from typing import List

from repro.common.config import BaryonConfig, SimulationConfig
from repro.workloads import scaled_system
from repro.workloads.suite import REPRESENTATIVE, WORKLOADS

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "256"))
N_ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "30000"))
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Designs compared in the cache-mode figure (Fig. 9).
CACHE_DESIGNS = ["simple", "unison", "dice", "baryon-64b", "baryon"]
#: Designs compared in the flat-mode figure (Fig. 10).
FLAT_DESIGNS = ["hybrid2", "baryon-fa"]


def bench_system() -> tuple[BaryonConfig, SimulationConfig]:
    """The scaled system every figure benchmark runs on."""
    return scaled_system(SCALE)


def bench_workloads() -> List[str]:
    """Workload list: representative subset or the full suite."""
    return sorted(WORKLOADS) if FULL else list(REPRESENTATIVE)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    header = f"scale=1/{SCALE} accesses={N_ACCESSES} full={FULL}"
    (RESULTS_DIR / f"{name}.txt").write_text(f"{header}\n{text}\n")
