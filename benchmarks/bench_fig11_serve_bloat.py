"""Fig. 11 — fast-memory serve rate and bandwidth bloat factor.

Left panel: the percentage of memory accesses served by the fast memory
(higher is better) — the paper's pr.twi example is 77% for Baryon vs 37%
(Unison) and 44% (DICE). Right panel: total fast-memory traffic divided
by useful LLC demand traffic (lower is better).
"""

from repro.analysis import format_matrix, run_matrix

from common import CACHE_DESIGNS, N_ACCESSES, bench_system, bench_workloads, emit


def run_fig11():
    config, sim_config = bench_system()
    workloads = bench_workloads()
    matrix = run_matrix(
        workloads, CACHE_DESIGNS, config, sim_config, n_accesses=N_ACCESSES
    )
    serve = format_matrix(
        matrix, workloads, CACHE_DESIGNS,
        metric="serve_rate",
        title="Fig. 11 (left): fast-memory serve rate",
    )
    bloat = format_matrix(
        matrix, workloads, CACHE_DESIGNS,
        metric="bandwidth_bloat",
        title="Fig. 11 (right): fast-memory bandwidth bloat factor",
    )
    emit("fig11_serve_bloat", serve + "\n\n" + bloat)
    return matrix


def test_fig11_serve_and_bloat(benchmark):
    matrix = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    for (workload, design), result in matrix.items():
        assert 0.0 <= result.serve_rate <= 1.0
        assert result.bandwidth_bloat >= 0.0
