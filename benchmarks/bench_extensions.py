"""Extension studies beyond the paper's figures (Sec. III-E/III-F themes).

Three ablations the paper discusses qualitatively but does not plot:

* **Associativity** (Sec. III-F "Supporting high associativities"): Baryon
  at 1/2/4/8 fast ways per set (the paper picks 4 and argues higher
  associativities are easy because it already uses a forward remap table);
* **Fast-area eviction policy** (Sec. III-E: "LRU, LFU, CLOCK, and even
  random" are interchangeable);
* **DRAM row-buffer modelling**: the open-page bank model versus the flat
  array latency, showing how much row locality the designs' fast-memory
  streams retain.
"""

import dataclasses

from repro.analysis import run_one
from repro.analysis.report import format_series
from repro.common.config import MemoryTimings
from repro.common.stats import geometric_mean

from common import N_ACCESSES, bench_system, bench_workloads, emit


def geomean_ipc(config, sim_config, workloads):
    return geometric_mean(
        [
            run_one(w, "baryon", config, sim_config, n_accesses=N_ACCESSES).ipc
            for w in workloads
        ]
    )


def run_extensions():
    config, sim_config = bench_system()
    workloads = bench_workloads()[:3]
    base = geomean_ipc(config, sim_config, workloads)
    sections = []

    points = []
    for assoc in (1, 2, 4, 8):
        layout = dataclasses.replace(config.layout, associativity=assoc)
        cfg = dataclasses.replace(config, layout=layout)
        points.append((f"{assoc}-way", geomean_ipc(cfg, sim_config, workloads) / base))
    sections.append(
        format_series("Associativity (normalized to the default 4-way)", points)
    )

    points = []
    for policy in ("lru", "fifo", "lfu", "clock", "random"):
        cfg = dataclasses.replace(config, fast_replacement=policy)
        points.append((policy, geomean_ipc(cfg, sim_config, workloads) / base))
    sections.append(
        format_series("Fast-area eviction policy (normalized to LRU)", points)
    )

    rb_cfg = dataclasses.replace(
        config, timings=MemoryTimings(model_row_buffer=True)
    )
    sections.append(
        format_series(
            "DRAM row-buffer model (normalized to flat array latency)",
            [
                ("flat latency (default)", 1.0),
                ("open-page banks", geomean_ipc(rb_cfg, sim_config, workloads) / base),
            ],
        )
    )
    return "\n\n".join(sections)


def test_extension_studies(benchmark):
    text = benchmark.pedantic(run_extensions, rounds=1, iterations=1)
    emit("extensions", text)
    assert "Associativity" in text and "row-buffer" in text
