"""Micro-benchmarks of the hot code paths (true pytest-benchmark timing).

These complement the figure benchmarks: they time the real FPC/BDI
implementations, the metadata encode/decode paths, and the controller's
per-access cost, so performance regressions in the library itself are
visible.

Run directly as a script, this file also measures the sweep-level
optimizations of the parallel runner and compression memo and records
the numbers in a ``BENCH_parallel.json`` artifact (see
docs/performance.md)::

    PYTHONPATH=src python benchmarks/bench_micro.py \
        --workloads YCSB-B,557.xz_r --designs simple,baryon \
        --accesses 2000 --scale 512 --jobs 4 --out BENCH_parallel.json

The script asserts that the legacy per-cell serial path, the
trace-reusing serial path, and the process-pool parallel path all
produce bit-identical results before it reports any timing.
"""

import random
import struct

from repro.compression import BdiCompressor, CompressionEngine, FpcCompressor
from repro.core import BaryonController
from repro.metadata.remap import RemapEntry, locate_sub_block
from repro.metadata.stage_tag import RangeSlot, StageTagEntry

from common import bench_system


def _patterned_block(n=256):
    base = 1 << 40
    return b"".join(
        struct.pack(">q", base + (i % 50) - 25) for i in range(n // 8)
    )


def test_fpc_compress_256b(benchmark):
    fpc = FpcCompressor()
    data = _patterned_block()
    result = benchmark(fpc.compress, data)
    assert fpc.decompress(result) == data


def test_bdi_compress_256b(benchmark):
    bdi = BdiCompressor()
    data = _patterned_block()
    result = benchmark(bdi.compress, data)
    assert bdi.decompress(result) == data


def test_stage_tag_entry_roundtrip(benchmark):
    entry = StageTagEntry(
        tag=0x1FFFF,
        valid=True,
        slots=[RangeSlot(cf=2, blk_off=i % 8, sub_start=(i % 4) * 2) for i in range(8)],
        miss_count=77,
    )

    def roundtrip():
        return StageTagEntry.decode(entry.encode())

    decoded = benchmark(roundtrip)
    assert decoded.tag == entry.tag


def test_remap_position_lookup(benchmark):
    entries = [
        RemapEntry(remap=0xF0, pointer=1, cf4=0b10),
        RemapEntry(remap=0x0F, pointer=1, cf2=0b0011),
        RemapEntry(remap=0xFF, pointer=1, cf2=0b1100, cf4=0b01),
    ] + [RemapEntry()] * 5

    def locate():
        return locate_sub_block(entries, 2, 6)

    position = benchmark(locate)
    assert position is not None


def test_compression_memo_hot_fits(benchmark):
    """fits() on a recurring byte range: one dict probe after the first
    FPC+BDI evaluation (the content-keyed memo's hot path)."""
    engine = CompressionEngine()
    data = _patterned_block(512)
    engine.fits(data)  # warm the memo
    fits = benchmark(engine.fits, data)
    assert fits
    assert engine.stats.get("memo_hits") > 0


def test_controller_access_throughput(benchmark):
    config, _ = bench_system()
    ctrl = BaryonController(config, seed=1)
    rng = random.Random(7)
    footprint = 2 * config.layout.fast_capacity
    addrs = [(rng.randrange(footprint) // 64) * 64 for _ in range(2048)]
    index = 0

    def one_access():
        nonlocal index
        ctrl.access(addrs[index % len(addrs)], index % 4 == 0)
        index += 1

    benchmark(one_access)
    assert ctrl.stats.get("accesses") > 0


# ---------------------------------------------------------------------------
# Script mode: sweep-level before/after numbers -> BENCH_parallel.json
# ---------------------------------------------------------------------------

def _bench_matrix(workloads, designs, scale, accesses, seed, jobs):
    """Time the legacy serial path vs. trace-reuse serial vs. parallel.

    Returns the timing dict after asserting all three paths produce
    bit-identical results.
    """
    from time import perf_counter

    from repro.analysis import run_matrix, run_one
    from repro.parallel import clear_trace_cache, fork_available
    from repro.workloads import scaled_system

    config, sim_config = scaled_system(scale)

    t0 = perf_counter()
    legacy = {
        (w, d): run_one(w, d, config, sim_config, n_accesses=accesses, seed=seed)
        for w in workloads
        for d in designs
    }
    legacy_s = perf_counter() - t0

    clear_trace_cache()
    t0 = perf_counter()
    serial = run_matrix(
        workloads, designs, config, sim_config,
        n_accesses=accesses, seed=seed, jobs=1,
    )
    serial_s = perf_counter() - t0

    clear_trace_cache()
    t0 = perf_counter()
    parallel = run_matrix(
        workloads, designs, config, sim_config,
        n_accesses=accesses, seed=seed, jobs=jobs,
    )
    parallel_s = perf_counter() - t0

    assert set(legacy) == set(serial) == set(parallel)
    for key in legacy:
        if not (legacy[key].to_dict() == serial[key].to_dict()
                == parallel[key].to_dict()):
            raise AssertionError(f"results diverge across runner paths: {key}")

    return {
        "cells": len(legacy),
        "workloads": list(workloads),
        "designs": list(designs),
        "accesses": accesses,
        "scale": scale,
        "jobs": jobs,
        "fork_available": fork_available(),
        "serial_legacy_s": round(legacy_s, 4),
        "serial_reuse_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup_parallel_vs_serial": round(serial_s / parallel_s, 3),
        "speedup_parallel_vs_legacy": round(legacy_s / parallel_s, 3),
        "results_match": True,
    }


def _hotpath_breakdown(ctrl, sim, trace, workload, design):
    """One untimed batched run with the controller entry points wrapped.

    Attributes wall time to the deferred fast path (classification plus
    batched replay) versus the scalar ``access`` fallback, and reports
    the full-run :class:`AccessCase` counts plus the per-reason decline
    counters — so a hot-path regression is attributable to a specific
    case mix shift, a fallback-rate change, or one decline reason.

    Controllers that export an inlined server closure
    (``make_deferred_server``) bypass ``access_deferred`` /
    ``access_batch`` entirely, so the factory itself is wrapped: the
    serve/batch closures it returns are timed the same way the bound
    methods are.
    """
    from time import perf_counter

    acc = {
        "deferred_ops": 0, "deferred_declined": 0, "deferred_s": 0.0,
        "batch_flushes": 0, "batch_s": 0.0,
        "fallback_calls": 0, "fallback_s": 0.0,
    }
    real_access = ctrl.access

    def timed_access(addr, is_write, now):
        t0 = perf_counter()
        out = real_access(addr, is_write, now)
        acc["fallback_s"] += perf_counter() - t0
        acc["fallback_calls"] += 1
        return out

    # Instance attributes shadow the class methods, so the simulator's
    # lookups bind the wrappers without any simulator-side hooks.
    ctrl.access = timed_access
    if getattr(ctrl, "supports_batching", False):
        real_deferred = ctrl.access_deferred
        real_batch = ctrl.access_batch

        def timed_deferred(addr, is_write):
            t0 = perf_counter()
            op = real_deferred(addr, is_write)
            acc["deferred_s"] += perf_counter() - t0
            if op is None:
                acc["deferred_declined"] += 1
            else:
                acc["deferred_ops"] += 1
            return op

        def timed_batch(ops, cycles, mlp):
            t0 = perf_counter()
            out = real_batch(ops, cycles, mlp)
            acc["batch_s"] += perf_counter() - t0
            acc["batch_flushes"] += 1
            return out

        ctrl.access_deferred = timed_deferred
        ctrl.access_batch = timed_batch

        real_make_server = getattr(ctrl, "make_deferred_server", None)
        if real_make_server is not None:
            def timed_make_server(dirty_blocks=None):
                serve, flush, batch = real_make_server(dirty_blocks)

                def timed_serve(addr, is_write, code, aux):
                    t0 = perf_counter()
                    op = serve(addr, is_write, code, aux)
                    acc["deferred_s"] += perf_counter() - t0
                    if op is None:
                        acc["deferred_declined"] += 1
                    else:
                        acc["deferred_ops"] += 1
                    return op

                def timed_server_batch(ops, cycles, mlp):
                    t0 = perf_counter()
                    out = batch(ops, cycles, mlp)
                    acc["batch_s"] += perf_counter() - t0
                    acc["batch_flushes"] += 1
                    return out

                return timed_serve, flush, timed_server_batch

            ctrl.make_deferred_server = timed_make_server
    decline_base = dict(getattr(ctrl, "deferred_declines", None) or {})
    sim.run(trace, workload, design)
    cases = {
        key[len("case_"):]: value
        for key, value in ctrl.stats.as_dict().items()
        if key.startswith("case_")
    }
    # Authoritative decline accounting: the controller's per-reason
    # counters see every decline — serve()-time ones and the
    # pre-resolved classifier verdicts that never reach serve().
    decline_counters = getattr(ctrl, "deferred_declines", None)
    if decline_counters is not None:
        decline_reasons = {
            reason: count - decline_base.get(reason, 0)
            for reason, count in decline_counters.items()
        }
        declined = sum(decline_reasons.values())
    else:
        decline_reasons = {}
        declined = acc["deferred_declined"]
    return {
        "access_cases": cases,
        "fast_path": {
            "deferred_ops": acc["deferred_ops"],
            "classify_s": round(acc["deferred_s"], 4),
            "batch_flushes": acc["batch_flushes"],
            "replay_s": round(acc["batch_s"], 4),
        },
        "scalar_fallback": {
            "calls": acc["fallback_calls"],
            "declined_classifications": declined,
            "decline_reasons": decline_reasons,
            "time_s": round(acc["fallback_s"], 4),
        },
    }


def _bench_hotpath(workloads, designs, scale, accesses, seed, repeats=3):
    """Time the batched simulation loop against the scalar reference loop.

    Each (workload, design) cell runs the same pre-generated trace through
    a fresh controller in both modes; the cell's results must be
    bit-identical before any timing is reported.

    Returns ``(summary, results_by_cell)`` — the latter keyed
    ``"workload/design"`` with the batched :meth:`SimResult.to_dict`, for
    comparison against a reference-revision run.
    """
    from time import perf_counter

    from repro.analysis import build_controller
    from repro.sim import SystemSimulator
    from repro.workloads import build_workload, scaled_system

    config, sim_config = scaled_system(scale)
    cells = []
    results_by_cell = {}
    total_scalar = 0.0
    total_batched = 0.0
    for workload in workloads:
        trace = build_workload(
            workload, config.layout.fast_capacity, n_accesses=accesses, seed=seed
        )
        for design in designs:
            times = {}
            results = {}
            for mode, scalar in (("scalar", True), ("batched", False)):
                best = None
                for _ in range(repeats):
                    ctrl = build_controller(design, config, seed=seed)
                    if hasattr(ctrl, "oracle"):
                        trace.apply_compressibility(ctrl.oracle)
                    sim = SystemSimulator(ctrl, sim_config)
                    t0 = perf_counter()
                    result = sim.run(trace, workload, design, scalar=scalar)
                    elapsed = perf_counter() - t0
                    payload = result.to_dict()
                    if mode in results and results[mode] != payload:
                        raise AssertionError(
                            f"{mode} run not deterministic across repeats: "
                            f"({workload}, {design})"
                        )
                    results[mode] = payload
                    best = elapsed if best is None else min(best, elapsed)
                times[mode] = best
            if results["scalar"] != results["batched"]:
                raise AssertionError(
                    f"hot path diverges from scalar loop: ({workload}, {design})"
                )
            total_scalar += times["scalar"]
            total_batched += times["batched"]
            results_by_cell[f"{workload}/{design}"] = results["batched"]
            ctrl = build_controller(design, config, seed=seed)
            if hasattr(ctrl, "oracle"):
                trace.apply_compressibility(ctrl.oracle)
            breakdown = _hotpath_breakdown(
                ctrl, SystemSimulator(ctrl, sim_config), trace, workload, design
            )
            # Coverage smoke check: any batching-capable design (simple
            # included) must actually enter the deferred seam — a cell
            # with zero deferred ops means the seam silently disengaged.
            if (getattr(ctrl, "supports_batching", False)
                    and not breakdown["fast_path"]["deferred_ops"]):
                raise AssertionError(
                    f"deferred seam never engaged: ({workload}, {design}) "
                    "reports deferred_ops == 0"
                )
            cells.append({
                "workload": workload,
                "design": design,
                "scalar_s": round(times["scalar"], 4),
                "batched_s": round(times["batched"], 4),
                "speedup": round(times["scalar"] / times["batched"], 3),
                "breakdown": breakdown,
            })
    summary = {
        "workloads": list(workloads),
        "designs": list(designs),
        "accesses": accesses,
        "scale": scale,
        "repeats": repeats,
        "cells": cells,
        "scalar_total_s": round(total_scalar, 4),
        "batched_total_s": round(total_batched, 4),
        "loop_speedup": round(total_scalar / total_batched, 3),
        "results_match": True,
    }
    return summary, results_by_cell


#: Sweep script executed (via ``python -c``) against a reference checkout's
#: ``src`` so the pre-change revision's modules time the same cells
#: end-to-end. It reads the cell spec as JSON on stdin and prints one JSON
#: line: total wall seconds plus, per cell, the best wall time and the
#: SimResult dict (the script text ships with *this* tree, so the output
#: format does not depend on the reference revision).
_REF_SWEEP_SCRIPT = r"""
import json, sys
from time import perf_counter
from repro.workloads import scaled_system, build_workload
from repro.analysis import build_controller
from repro.sim import SystemSimulator

spec = json.loads(sys.stdin.read())
config, sim_config = scaled_system(spec["scale"])
total = 0.0
cells = {}
for workload in spec["workloads"]:
    trace = build_workload(
        workload, config.layout.fast_capacity,
        n_accesses=spec["accesses"], seed=spec["seed"],
    )
    for design in spec["designs"]:
        best = None
        for _ in range(spec.get("repeats", 1)):
            ctrl = build_controller(design, config, seed=spec["seed"])
            if hasattr(ctrl, "oracle"):
                trace.apply_compressibility(ctrl.oracle)
            sim = SystemSimulator(ctrl, sim_config)
            t0 = perf_counter()
            result = sim.run(trace, workload, design)
            elapsed = perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        total += best
        cells[workload + "/" + design] = {
            "best_s": best, "result": result.to_dict(),
        }
print(json.dumps({"total_s": total, "cells": cells}))
"""


def _bench_hotpath_reference(
    ref_src, workloads, designs, scale, accesses, seed, repeats=3
):
    """End-to-end time of the same sweep on a reference checkout's code.

    The subprocess imports ``repro`` from ``ref_src`` (PYTHONPATH), so the
    numbers measure the whole pre-change stack — per-access loop and
    subsystems — not just the loop. Returns the parsed result dict.
    """
    import json
    import os
    import subprocess
    import sys

    env = dict(os.environ, PYTHONPATH=ref_src)
    spec = {
        "workloads": list(workloads),
        "designs": list(designs),
        "scale": scale,
        "accesses": accesses,
        "seed": seed,
        "repeats": repeats,
    }
    proc = subprocess.run(
        [sys.executable, "-c", _REF_SWEEP_SCRIPT],
        input=json.dumps(spec),
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _add_ref_worktree(rev):
    """Materialize ``rev`` in a temporary git worktree; returns its path."""
    import subprocess
    import tempfile

    path = tempfile.mkdtemp(prefix="hotpath-ref-")
    subprocess.run(
        ["git", "worktree", "add", "--detach", "--force", path, rev],
        check=True,
        capture_output=True,
        text=True,
    )
    return path


def _remove_ref_worktree(path):
    import shutil
    import subprocess

    subprocess.run(
        ["git", "worktree", "remove", "--force", path],
        check=False,
        capture_output=True,
    )
    shutil.rmtree(path, ignore_errors=True)


def _bench_memo(scale, accesses, memo_capacity):
    """One controller run over a real-content (FPC/BDI) oracle."""
    from time import perf_counter

    from repro.workloads import scaled_system
    from repro.workloads.datagen import ContentBackedCompressibility, ContentStore

    config, _ = scaled_system(scale)
    ctrl = BaryonController(config, seed=2)
    store = ContentStore(pattern="small_ints", seed=4)
    engine = CompressionEngine(
        geometry=store.geometry, memo_capacity=memo_capacity
    )
    ctrl.oracle = ContentBackedCompressibility(
        store, engine=engine, write_noise=0.05, seed=4
    )
    rng = random.Random(6)
    footprint = 2 * config.layout.fast_capacity
    # A hot working set small enough to be re-staged repeatedly — the
    # regime where the controller re-probes the same content and the
    # memo's one-evaluation-per-distinct-range guarantee pays off.
    hot = footprint // 256
    t0 = perf_counter()
    for _ in range(accesses):
        region = hot if rng.random() < 0.9 else footprint
        addr = (rng.randrange(region) // 64) * 64
        ctrl.access(addr, rng.random() < 0.2)
    return perf_counter() - t0, engine


def main(argv=None):
    import argparse
    import json
    import os
    import sys
    from datetime import datetime, timezone

    parser = argparse.ArgumentParser(
        description="Sweep-level benchmark: parallel runner + compression "
        "memo before/after numbers, recorded as a JSON artifact.",
    )
    parser.add_argument("--workloads", default="YCSB-B,557.xz_r",
                        help="comma-separated workload list")
    parser.add_argument("--designs", default="simple,baryon",
                        help="comma-separated design list")
    parser.add_argument("--accesses", type=int, default=10_000)
    parser.add_argument("--scale", type=int, default=256)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--memo-accesses", type=int, default=4_000,
                        help="accesses for the real-content memo benchmark")
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--hotpath-accesses", type=int, default=40_000,
                        help="accesses per cell for the hot-path benchmark")
    parser.add_argument("--hotpath-out", default="BENCH_hotpath.json",
                        help="artifact for the batched-vs-scalar loop numbers")
    parser.add_argument("--hotpath-repeats", type=int, default=3,
                        help="repeats per cell/mode; best-of-N is reported")
    parser.add_argument("--min-hotpath-speedup", type=float, default=0.0,
                        help="fail when the end-to-end hot-path speedup "
                        "falls below this factor (0 disables the check)")
    parser.add_argument("--hotpath-ref-rev", default=None,
                        help="git revision of the pre-change code to time "
                        "end-to-end (materialized in a temporary worktree)")
    parser.add_argument("--hotpath-ref-src", default=None,
                        help="path to a pre-change checkout's src/ to time "
                        "end-to-end (overrides --hotpath-ref-rev)")
    parser.add_argument("--ratio-baseline", default=None,
                        help="JSON baseline of design-time ratios (e.g. "
                        "baryon/simple); fail when a ratio regresses past "
                        "the tolerance")
    parser.add_argument("--max-ratio-regression", type=float, default=0.15,
                        help="allowed fractional worsening of a baseline "
                        "design-time ratio (default 0.15 = +15%%)")
    parser.add_argument("--skip-matrix", action="store_true",
                        help="skip the parallel-runner/memo benchmarks and "
                        "only run the hot-path benchmark")
    args = parser.parse_args(argv)

    workloads = [w for w in args.workloads.split(",") if w]
    designs = [d for d in args.designs.split(",") if d]

    hotpath, batched_results = _bench_hotpath(
        workloads, designs, args.scale, args.hotpath_accesses, args.seed,
        repeats=args.hotpath_repeats,
    )
    print(f"hot path {len(hotpath['cells'])} cells x "
          f"{args.hotpath_accesses} accesses: "
          f"scalar {hotpath['scalar_total_s']}s -> "
          f"batched {hotpath['batched_total_s']}s "
          f"({hotpath['loop_speedup']}x loop speedup, bit-identical results)")

    # End-to-end measurement against the pre-change revision. The scalar
    # loop above shares this tree's optimized subsystems, so it isolates
    # only the loop overhead; the reference run times the whole old stack.
    headline = hotpath["loop_speedup"]
    ref_src = args.hotpath_ref_src
    ref_label = ref_src
    worktree = None
    if ref_src is None and args.hotpath_ref_rev:
        try:
            worktree = _add_ref_worktree(args.hotpath_ref_rev)
            ref_src = os.path.join(worktree, "src")
            ref_label = args.hotpath_ref_rev
        except Exception as err:  # shallow clone, detached worktree, ...
            print(f"reference worktree for {args.hotpath_ref_rev!r} "
                  f"unavailable, skipping end-to-end comparison: {err}",
                  file=sys.stderr)
    if ref_src is not None:
        try:
            ref = _bench_hotpath_reference(
                ref_src, workloads, designs,
                args.scale, args.hotpath_accesses, args.seed,
                repeats=args.hotpath_repeats,
            )
            # ``energy`` and ``extra`` intentionally changed semantics
            # (measured-window deltas instead of full-run totals), so the
            # bit-identity requirement covers every *counter* field only.
            def _counters(result):
                return {
                    k: v for k, v in result.items()
                    if k not in ("energy", "extra")
                }

            mismatched = [
                cell for cell, payload in ref["cells"].items()
                if _counters(batched_results.get(cell, {}))
                != _counters(payload["result"])
            ]
            if mismatched:
                raise AssertionError(
                    "batched results diverge from the reference revision: "
                    + ", ".join(sorted(mismatched))
                )
            end_to_end = round(ref["total_s"] / hotpath["batched_total_s"], 3)
            # Per-cell end-to-end ratios: the baryon cells are the ones
            # the deferred path targets, so they are judged individually
            # instead of being averaged with the baseline cells.
            for cell in hotpath["cells"]:
                ref_cell = ref["cells"].get(
                    cell["workload"] + "/" + cell["design"]
                )
                if ref_cell is not None:
                    cell["ref_s"] = round(ref_cell["best_s"], 4)
                    cell["end_to_end"] = round(
                        ref_cell["best_s"] / cell["batched_s"], 3
                    )
            hotpath["reference"] = {
                "rev": ref_label,
                "total_s": round(ref["total_s"], 4),
                "end_to_end_speedup": end_to_end,
                "results_match": True,
            }
            headline = end_to_end
            print(f"reference {ref_label}: {hotpath['reference']['total_s']}s "
                  f"-> batched {hotpath['batched_total_s']}s "
                  f"({end_to_end}x end-to-end, bit-identical results)")
            for cell in hotpath["cells"]:
                if "end_to_end" in cell:
                    print(f"  {cell['workload']}/{cell['design']}: "
                          f"ref {cell['ref_s']}s -> {cell['batched_s']}s "
                          f"({cell['end_to_end']}x)")
        finally:
            if worktree is not None:
                _remove_ref_worktree(worktree)
    hotpath["speedup"] = headline

    # Design-time ratios (e.g. baryon/simple per workload): machine speed
    # cancels inside one run, so these are the stable regression signal
    # the CI gate checks against the committed baseline.
    by_cell = {(c["workload"], c["design"]): c["batched_s"]
               for c in hotpath["cells"]}
    ratios = {}
    if "simple" in designs:
        for workload in workloads:
            simple_s = by_cell.get((workload, "simple"))
            if not simple_s:
                continue
            for design in designs:
                if design != "simple" and (workload, design) in by_cell:
                    ratios[f"{workload}:{design}/simple"] = round(
                        by_cell[(workload, design)] / simple_s, 3
                    )
    hotpath["design_time_ratios"] = ratios

    hotpath_payload = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "hotpath": hotpath,
    }
    with open(args.hotpath_out, "w", encoding="utf-8") as sink:
        json.dump(hotpath_payload, sink, indent=2)
        sink.write("\n")
    print(f"wrote {args.hotpath_out}")
    if args.min_hotpath_speedup and hotpath["speedup"] < args.min_hotpath_speedup:
        print(f"hot-path speedup {hotpath['speedup']}x below required "
              f"{args.min_hotpath_speedup}x", file=sys.stderr)
        return 1
    if args.ratio_baseline and ratios:
        with open(args.ratio_baseline, encoding="utf-8") as source:
            baseline = json.load(source)
        tolerance = args.max_ratio_regression
        regressed = []
        for key, base in baseline.get("ratios", {}).items():
            current = ratios.get(key)
            if current is not None and current > base * (1.0 + tolerance):
                regressed.append(
                    f"{key}: {current} vs baseline {base} "
                    f"(+{(current / base - 1.0):.0%} > {tolerance:.0%})"
                )
        if regressed:
            print("design-time ratio regression:\n  "
                  + "\n  ".join(regressed), file=sys.stderr)
            return 1
    if args.skip_matrix:
        return 0

    matrix = _bench_matrix(
        workloads, designs, args.scale, args.accesses, args.seed, args.jobs
    )
    print(f"matrix {matrix['cells']} cells: "
          f"legacy {matrix['serial_legacy_s']}s, "
          f"reuse {matrix['serial_reuse_s']}s, "
          f"jobs={args.jobs} {matrix['parallel_s']}s "
          f"({matrix['speedup_parallel_vs_serial']}x vs serial, "
          f"{matrix['speedup_parallel_vs_legacy']}x vs legacy); "
          f"results match")

    cold_s, cold_engine = _bench_memo(args.scale, args.memo_accesses, 0)
    memo_s, memo_engine = _bench_memo(
        args.scale, args.memo_accesses, CompressionEngine().memo_capacity
    )
    assert memo_engine.stats.get("memo_hits") > 0, "memo never hit"
    memo = {
        "accesses": args.memo_accesses,
        "content_pattern": "small_ints",
        "cold_s": round(cold_s, 4),
        "memo_s": round(memo_s, 4),
        "speedup": round(cold_s / memo_s, 3),
        "hit_rate": round(memo_engine.memo_hit_rate, 4),
        "memo_hits": memo_engine.stats.get("memo_hits"),
        "memo_misses": memo_engine.stats.get("memo_misses"),
        "memo_evictions": memo_engine.stats.get("memo_evictions"),
    }
    print(f"compression memo: cold {memo['cold_s']}s -> memo {memo['memo_s']}s "
          f"({memo['speedup']}x, hit rate {memo['hit_rate']:.1%})")

    payload = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "matrix": matrix,
        "compression_memo": memo,
    }
    with open(args.out, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)
        sink.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
