"""Micro-benchmarks of the hot code paths (true pytest-benchmark timing).

These complement the figure benchmarks: they time the real FPC/BDI
implementations, the metadata encode/decode paths, and the controller's
per-access cost, so performance regressions in the library itself are
visible.

Run directly as a script, this file also measures the sweep-level
optimizations of the parallel runner and compression memo and records
the numbers in a ``BENCH_parallel.json`` artifact (see
docs/performance.md)::

    PYTHONPATH=src python benchmarks/bench_micro.py \
        --workloads YCSB-B,557.xz_r --designs simple,baryon \
        --accesses 2000 --scale 512 --jobs 4 --out BENCH_parallel.json

The script asserts that the legacy per-cell serial path, the
trace-reusing serial path, and the process-pool parallel path all
produce bit-identical results before it reports any timing.
"""

import random
import struct

from repro.compression import BdiCompressor, CompressionEngine, FpcCompressor
from repro.core import BaryonController
from repro.metadata.remap import RemapEntry, locate_sub_block
from repro.metadata.stage_tag import RangeSlot, StageTagEntry

from common import bench_system


def _patterned_block(n=256):
    base = 1 << 40
    return b"".join(
        struct.pack(">q", base + (i % 50) - 25) for i in range(n // 8)
    )


def test_fpc_compress_256b(benchmark):
    fpc = FpcCompressor()
    data = _patterned_block()
    result = benchmark(fpc.compress, data)
    assert fpc.decompress(result) == data


def test_bdi_compress_256b(benchmark):
    bdi = BdiCompressor()
    data = _patterned_block()
    result = benchmark(bdi.compress, data)
    assert bdi.decompress(result) == data


def test_stage_tag_entry_roundtrip(benchmark):
    entry = StageTagEntry(
        tag=0x1FFFF,
        valid=True,
        slots=[RangeSlot(cf=2, blk_off=i % 8, sub_start=(i % 4) * 2) for i in range(8)],
        miss_count=77,
    )

    def roundtrip():
        return StageTagEntry.decode(entry.encode())

    decoded = benchmark(roundtrip)
    assert decoded.tag == entry.tag


def test_remap_position_lookup(benchmark):
    entries = [
        RemapEntry(remap=0xF0, pointer=1, cf4=0b10),
        RemapEntry(remap=0x0F, pointer=1, cf2=0b0011),
        RemapEntry(remap=0xFF, pointer=1, cf2=0b1100, cf4=0b01),
    ] + [RemapEntry()] * 5

    def locate():
        return locate_sub_block(entries, 2, 6)

    position = benchmark(locate)
    assert position is not None


def test_compression_memo_hot_fits(benchmark):
    """fits() on a recurring byte range: one dict probe after the first
    FPC+BDI evaluation (the content-keyed memo's hot path)."""
    engine = CompressionEngine()
    data = _patterned_block(512)
    engine.fits(data)  # warm the memo
    fits = benchmark(engine.fits, data)
    assert fits
    assert engine.stats.get("memo_hits") > 0


def test_controller_access_throughput(benchmark):
    config, _ = bench_system()
    ctrl = BaryonController(config, seed=1)
    rng = random.Random(7)
    footprint = 2 * config.layout.fast_capacity
    addrs = [(rng.randrange(footprint) // 64) * 64 for _ in range(2048)]
    index = 0

    def one_access():
        nonlocal index
        ctrl.access(addrs[index % len(addrs)], index % 4 == 0)
        index += 1

    benchmark(one_access)
    assert ctrl.stats.get("accesses") > 0


# ---------------------------------------------------------------------------
# Script mode: sweep-level before/after numbers -> BENCH_parallel.json
# ---------------------------------------------------------------------------

def _bench_matrix(workloads, designs, scale, accesses, seed, jobs):
    """Time the legacy serial path vs. trace-reuse serial vs. parallel.

    Returns the timing dict after asserting all three paths produce
    bit-identical results.
    """
    from time import perf_counter

    from repro.analysis import run_matrix, run_one
    from repro.parallel import clear_trace_cache, fork_available
    from repro.workloads import scaled_system

    config, sim_config = scaled_system(scale)

    t0 = perf_counter()
    legacy = {
        (w, d): run_one(w, d, config, sim_config, n_accesses=accesses, seed=seed)
        for w in workloads
        for d in designs
    }
    legacy_s = perf_counter() - t0

    clear_trace_cache()
    t0 = perf_counter()
    serial = run_matrix(
        workloads, designs, config, sim_config,
        n_accesses=accesses, seed=seed, jobs=1,
    )
    serial_s = perf_counter() - t0

    clear_trace_cache()
    t0 = perf_counter()
    parallel = run_matrix(
        workloads, designs, config, sim_config,
        n_accesses=accesses, seed=seed, jobs=jobs,
    )
    parallel_s = perf_counter() - t0

    assert set(legacy) == set(serial) == set(parallel)
    for key in legacy:
        if not (legacy[key].to_dict() == serial[key].to_dict()
                == parallel[key].to_dict()):
            raise AssertionError(f"results diverge across runner paths: {key}")

    return {
        "cells": len(legacy),
        "workloads": list(workloads),
        "designs": list(designs),
        "accesses": accesses,
        "scale": scale,
        "jobs": jobs,
        "fork_available": fork_available(),
        "serial_legacy_s": round(legacy_s, 4),
        "serial_reuse_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup_parallel_vs_serial": round(serial_s / parallel_s, 3),
        "speedup_parallel_vs_legacy": round(legacy_s / parallel_s, 3),
        "results_match": True,
    }


def _bench_memo(scale, accesses, memo_capacity):
    """One controller run over a real-content (FPC/BDI) oracle."""
    from time import perf_counter

    from repro.workloads import scaled_system
    from repro.workloads.datagen import ContentBackedCompressibility, ContentStore

    config, _ = scaled_system(scale)
    ctrl = BaryonController(config, seed=2)
    store = ContentStore(pattern="small_ints", seed=4)
    engine = CompressionEngine(
        geometry=store.geometry, memo_capacity=memo_capacity
    )
    ctrl.oracle = ContentBackedCompressibility(
        store, engine=engine, write_noise=0.05, seed=4
    )
    rng = random.Random(6)
    footprint = 2 * config.layout.fast_capacity
    # A hot working set small enough to be re-staged repeatedly — the
    # regime where the controller re-probes the same content and the
    # memo's one-evaluation-per-distinct-range guarantee pays off.
    hot = footprint // 256
    t0 = perf_counter()
    for _ in range(accesses):
        region = hot if rng.random() < 0.9 else footprint
        addr = (rng.randrange(region) // 64) * 64
        ctrl.access(addr, rng.random() < 0.2)
    return perf_counter() - t0, engine


def main(argv=None):
    import argparse
    import json
    import os
    import sys
    from datetime import datetime, timezone

    parser = argparse.ArgumentParser(
        description="Sweep-level benchmark: parallel runner + compression "
        "memo before/after numbers, recorded as a JSON artifact.",
    )
    parser.add_argument("--workloads", default="YCSB-B,557.xz_r",
                        help="comma-separated workload list")
    parser.add_argument("--designs", default="simple,baryon",
                        help="comma-separated design list")
    parser.add_argument("--accesses", type=int, default=10_000)
    parser.add_argument("--scale", type=int, default=256)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--memo-accesses", type=int, default=4_000,
                        help="accesses for the real-content memo benchmark")
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    workloads = [w for w in args.workloads.split(",") if w]
    designs = [d for d in args.designs.split(",") if d]

    matrix = _bench_matrix(
        workloads, designs, args.scale, args.accesses, args.seed, args.jobs
    )
    print(f"matrix {matrix['cells']} cells: "
          f"legacy {matrix['serial_legacy_s']}s, "
          f"reuse {matrix['serial_reuse_s']}s, "
          f"jobs={args.jobs} {matrix['parallel_s']}s "
          f"({matrix['speedup_parallel_vs_serial']}x vs serial, "
          f"{matrix['speedup_parallel_vs_legacy']}x vs legacy); "
          f"results match")

    cold_s, cold_engine = _bench_memo(args.scale, args.memo_accesses, 0)
    memo_s, memo_engine = _bench_memo(
        args.scale, args.memo_accesses, CompressionEngine().memo_capacity
    )
    assert memo_engine.stats.get("memo_hits") > 0, "memo never hit"
    memo = {
        "accesses": args.memo_accesses,
        "content_pattern": "small_ints",
        "cold_s": round(cold_s, 4),
        "memo_s": round(memo_s, 4),
        "speedup": round(cold_s / memo_s, 3),
        "hit_rate": round(memo_engine.memo_hit_rate, 4),
        "memo_hits": memo_engine.stats.get("memo_hits"),
        "memo_misses": memo_engine.stats.get("memo_misses"),
        "memo_evictions": memo_engine.stats.get("memo_evictions"),
    }
    print(f"compression memo: cold {memo['cold_s']}s -> memo {memo['memo_s']}s "
          f"({memo['speedup']}x, hit rate {memo['hit_rate']:.1%})")

    payload = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "matrix": matrix,
        "compression_memo": memo,
    }
    with open(args.out, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)
        sink.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
