"""Micro-benchmarks of the hot code paths (true pytest-benchmark timing).

These complement the figure benchmarks: they time the real FPC/BDI
implementations, the metadata encode/decode paths, and the controller's
per-access cost, so performance regressions in the library itself are
visible.
"""

import random
import struct

from repro.compression import BdiCompressor, FpcCompressor
from repro.core import BaryonController
from repro.metadata.remap import RemapEntry, locate_sub_block
from repro.metadata.stage_tag import RangeSlot, StageTagEntry

from common import bench_system


def _patterned_block(n=256):
    base = 1 << 40
    return b"".join(
        struct.pack(">q", base + (i % 50) - 25) for i in range(n // 8)
    )


def test_fpc_compress_256b(benchmark):
    fpc = FpcCompressor()
    data = _patterned_block()
    result = benchmark(fpc.compress, data)
    assert fpc.decompress(result) == data


def test_bdi_compress_256b(benchmark):
    bdi = BdiCompressor()
    data = _patterned_block()
    result = benchmark(bdi.compress, data)
    assert bdi.decompress(result) == data


def test_stage_tag_entry_roundtrip(benchmark):
    entry = StageTagEntry(
        tag=0x1FFFF,
        valid=True,
        slots=[RangeSlot(cf=2, blk_off=i % 8, sub_start=(i % 4) * 2) for i in range(8)],
        miss_count=77,
    )

    def roundtrip():
        return StageTagEntry.decode(entry.encode())

    decoded = benchmark(roundtrip)
    assert decoded.tag == entry.tag


def test_remap_position_lookup(benchmark):
    entries = [
        RemapEntry(remap=0xF0, pointer=1, cf4=0b10),
        RemapEntry(remap=0x0F, pointer=1, cf2=0b0011),
        RemapEntry(remap=0xFF, pointer=1, cf2=0b1100, cf4=0b01),
    ] + [RemapEntry()] * 5

    def locate():
        return locate_sub_block(entries, 2, 6)

    position = benchmark(locate)
    assert position is not None


def test_controller_access_throughput(benchmark):
    config, _ = bench_system()
    ctrl = BaryonController(config, seed=1)
    rng = random.Random(7)
    footprint = 2 * config.layout.fast_capacity
    addrs = [(rng.randrange(footprint) // 64) * 64 for _ in range(2048)]
    index = 0

    def one_access():
        nonlocal index
        ctrl.access(addrs[index % len(addrs)], index % 4 == 0)
        index += 1

    benchmark(one_access)
    assert ctrl.stats.get("accesses") > 0
