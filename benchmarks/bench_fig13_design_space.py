"""Fig. 13 — design-parameter exploration.

(a) two-level replacement on/off (paper: ~25% loss without block-level
    replacements);
(b) super-block size in blocks (paper: 8 sufficient, very large sizes can
    lose via conflict misses);
(c) stage-area size including the no-stage ablation (paper: 64 MB is
    generally sufficient; no stage loses 34.5% on average);
(d) selective-commit parameter k in {0, 1, 2, 4, inf} plus commit-all
    (paper: k slightly above 1 is best; insensitive among 1/2/4).
"""

import dataclasses

from repro.analysis import run_one
from repro.analysis.report import format_series
from repro.common.config import CommitConfig, StageConfig
from repro.common.stats import geometric_mean

from common import N_ACCESSES, SCALE, bench_system, bench_workloads, emit

MB = 1 << 20


def geomean_ipc(config, sim_config, workloads):
    ipcs = [
        run_one(w, "baryon", config, sim_config, n_accesses=N_ACCESSES).ipc
        for w in workloads
    ]
    return geometric_mean(ipcs)


def run_fig13():
    config, sim_config = bench_system()
    workloads = bench_workloads()[:3]
    base_ipc = geomean_ipc(config, sim_config, workloads)
    sections = []

    # (a) two-level replacement.
    no_two_level = dataclasses.replace(config, two_level_replacement=False)
    sections.append(
        format_series(
            "Fig. 13a: two-level replacement (normalized to default)",
            [
                ("two-level (default)", 1.0),
                ("sub-block only", geomean_ipc(no_two_level, sim_config, workloads) / base_ipc),
            ],
        )
    )

    # (b) super-block size in blocks.
    points = []
    for blocks in (2, 4, 8, 16):
        geometry = dataclasses.replace(config.geometry, super_block_blocks=blocks)
        cfg = dataclasses.replace(config, geometry=geometry)
        points.append((f"{blocks} blocks", geomean_ipc(cfg, sim_config, workloads) / base_ipc))
    sections.append(format_series("Fig. 13b: super-block size", points))

    # (c) stage-area size (scaled) plus no-stage.
    points = []
    for size_mb in (8, 16, 32, 64, 128):
        scaled = max(64 * 1024, size_mb * MB // SCALE)
        stage = dataclasses.replace(config.stage, size_bytes=scaled)
        cfg = dataclasses.replace(config, stage=stage)
        points.append(
            (f"{size_mb} MB (~{scaled >> 10} kB)", geomean_ipc(cfg, sim_config, workloads) / base_ipc)
        )
    no_stage = dataclasses.replace(
        config, stage=dataclasses.replace(config.stage, enabled=False)
    )
    points.append(("no stage area", geomean_ipc(no_stage, sim_config, workloads) / base_ipc))
    sections.append(format_series("Fig. 13c: stage area size", points))

    # (d) commit policy parameter k.
    points = []
    for label, commit in [
        ("k = 0 (write cost only)", CommitConfig(k=0.0)),
        ("k = 1", CommitConfig(k=1.0)),
        ("k = 2", CommitConfig(k=2.0)),
        ("k = 4 (default)", CommitConfig(k=4.0)),
        ("k = inf (stability only)", CommitConfig(stability_only=True)),
        ("commit-all", CommitConfig(commit_all=True)),
    ]:
        cfg = dataclasses.replace(config, commit=commit)
        points.append((label, geomean_ipc(cfg, sim_config, workloads) / base_ipc))
    sections.append(format_series("Fig. 13d: selective commit parameter", points))

    return "\n\n".join(sections)


def test_fig13_design_space(benchmark):
    text = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    emit("fig13_design_space", text)
    assert "Fig. 13a" in text and "Fig. 13d" in text
