"""Fig. 10 — flat-mode performance: Baryon-FA vs Hybrid2.

Both designs are fully-associative flat hybrid memories with 256 B
sub-blocking; Baryon-FA adds compression, the dual-format metadata and
the stability-aware commit policy. The paper reports 1.18x average and up
to 2.50x.
"""

from repro.analysis import format_matrix, run_matrix

from common import FLAT_DESIGNS, N_ACCESSES, bench_system, bench_workloads, emit


def run_fig10():
    config, sim_config = bench_system()
    workloads = bench_workloads()
    matrix = run_matrix(
        workloads, FLAT_DESIGNS, config, sim_config, n_accesses=N_ACCESSES
    )
    text = format_matrix(
        matrix,
        workloads,
        FLAT_DESIGNS,
        metric="ipc",
        baseline="hybrid2",
        title="Fig. 10: flat-mode speedup (normalized to Hybrid2)",
    )
    emit("fig10_flat_mode", text)
    return matrix


def test_fig10_flat_mode(benchmark):
    matrix = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    for result in matrix.values():
        assert result.ipc > 0
