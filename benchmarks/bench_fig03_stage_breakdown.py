"""Fig. 3 — access-type breakdown around the stage area.

(a) Outcomes of accesses to just-staged (S) vs committed (C) blocks with
    the default stage size: after commit, miss and write-overflow rates
    collapse (paper: <5% and <1% on average).
(b) Commit-time miss/overflow rates across stage area sizes (the paper
    sweeps 16/32/64/128 MB; we sweep the same sizes divided by the scale
    factor).
"""

import dataclasses

from repro.analysis import run_one
from repro.common.config import StageConfig
from repro.core.tracking import StagePhaseTracker

from common import N_ACCESSES, SCALE, bench_system, bench_workloads, emit

MB = 1 << 20
STAGE_SIZES_MB = [16, 32, 64, 128]


def run_fig03a():
    config, sim_config = bench_system()
    lines = ["Fig. 3a: access breakdown, just-staged (S) vs committed (C)"]
    lines.append(
        f"{'workload':<18} {'S miss':>8} {'S ovfl':>8} {'C miss':>8} {'C ovfl':>8}"
    )
    for workload in bench_workloads():
        tracker = StagePhaseTracker()
        run_one(
            workload, "baryon", config, sim_config,
            n_accesses=N_ACCESSES, tracker=tracker,
        )
        lines.append(
            f"{workload:<18}"
            f" {tracker.miss_rate('S'):>8.3f} {tracker.overflow_rate('S'):>8.4f}"
            f" {tracker.miss_rate('C'):>8.3f} {tracker.overflow_rate('C'):>8.4f}"
        )
    return "\n".join(lines)


def run_fig03b():
    config, sim_config = bench_system()
    workload = bench_workloads()[0]
    lines = [f"Fig. 3b: committed-block miss rate vs stage size ({workload})"]
    for size_mb in STAGE_SIZES_MB:
        scaled = max(64 * 1024, size_mb * MB // SCALE)
        stage = dataclasses.replace(config.stage, size_bytes=scaled)
        cfg = dataclasses.replace(config, stage=stage)
        tracker = StagePhaseTracker()
        run_one(
            workload, "baryon", cfg, sim_config,
            n_accesses=N_ACCESSES, tracker=tracker,
        )
        lines.append(
            f"  {size_mb:>4} MB (scaled {scaled >> 10:>5} kB)"
            f"  C-miss {tracker.miss_rate('C'):.3f}"
            f"  C-overflow {tracker.overflow_rate('C'):.4f}"
        )
    return "\n".join(lines)


def test_fig03_stage_breakdown(benchmark):
    def run():
        return run_fig03a() + "\n\n" + run_fig03b()

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig03_stage_breakdown", text)
    assert "Fig. 3a" in text and "Fig. 3b" in text
