"""Make the shared bench helpers importable when pytest runs this dir."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
