"""Fig. 9 — cache-mode performance: Simple / Unison / DICE / Baryon-64B / Baryon.

Regenerates the paper's headline comparison: IPC per workload normalized
to the Simple DRAM cache, geometric mean across workloads. The paper
reports Baryon at 1.38x Unison and 1.27x DICE on average, with Unison
winning only on 519.lbm_r (incompressible, write-heavy).
"""

from repro.analysis import format_matrix, run_matrix

from common import CACHE_DESIGNS, N_ACCESSES, bench_system, bench_workloads, emit


def run_fig09():
    config, sim_config = bench_system()
    workloads = bench_workloads()
    matrix = run_matrix(
        workloads, CACHE_DESIGNS, config, sim_config, n_accesses=N_ACCESSES
    )
    text = format_matrix(
        matrix,
        workloads,
        CACHE_DESIGNS,
        metric="ipc",
        baseline="simple",
        title="Fig. 9: cache-mode speedup (normalized to Simple)",
    )
    emit("fig09_cache_mode", text)
    return matrix


def test_fig09_cache_mode(benchmark):
    matrix = benchmark.pedantic(run_fig09, rounds=1, iterations=1)
    for result in matrix.values():
        assert result.ipc > 0
        assert 0.0 <= result.serve_rate <= 1.0
