"""Fig. 4 — stage-phase MPKI distribution over normalized phase time.

Samples staged blocks, bins their miss timelines over the normalized
stage phase (x = 0 at staging, x = 1 at commit/eviction), and reports the
5/25/50/75/95 percentiles per bin. The paper's observation: the
distribution drops by an order of magnitude within the first half of the
phase, with a persistent high-MPKI 95% tail motivating selective commits.
"""

from repro.analysis import run_one
from repro.core.tracking import StagePhaseTracker

from common import N_ACCESSES, bench_system, bench_workloads, emit


def run_fig04():
    config, sim_config = bench_system()
    workload = bench_workloads()[0]
    tracker = StagePhaseTracker(sample_blocks=1024, bins=10)
    run_one(
        workload, "baryon", config, sim_config,
        n_accesses=max(N_ACCESSES, 40_000), tracker=tracker,
    )
    lines = [f"Fig. 4: stage-phase miss distribution (misses/1k accesses), {workload}"]
    lines.append(
        f"{'phase x':>8} {'p5':>8} {'p25':>8} {'median':>8} {'p75':>8} {'p95':>8} {'n':>6}"
    )
    for row in tracker.mpki_distribution():
        if row.get("count", 0.0) == 0.0:
            lines.append(f"{row['bin']:>8.1f} {'-':>8} {'-':>8} {'-':>8} {'-':>8} {'-':>8} {0:>6}")
            continue
        lines.append(
            f"{row['bin']:>8.1f} {row['p5']:>8.1f} {row['p25']:>8.1f}"
            f" {row['median']:>8.1f} {row['p75']:>8.1f} {row['p95']:>8.1f}"
            f" {int(row['count']):>6}"
        )
    return "\n".join(lines), tracker


def test_fig04_stage_mpki(benchmark):
    text, tracker = benchmark.pedantic(run_fig04, rounds=1, iterations=1)
    emit("fig04_stage_mpki", text)
    dist = tracker.mpki_distribution()
    populated = [row for row in dist if row.get("count", 0.0) > 0]
    assert populated, "no stage phases sampled"
    # The paper's trend: later phase bins miss less than the first bin.
    first = populated[0]
    last = populated[-1]
    assert last["median"] <= first["median"] * 1.5
