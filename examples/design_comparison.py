"""Compare Baryon against every baseline on one workload, both schemes.

Reproduces a single column of Fig. 9 (cache mode) and Fig. 10 (flat mode)
for a workload of your choice, printing IPC speedups, serve rates and
bandwidth bloat side by side.

Run:  python examples/design_comparison.py [workload] [n_accesses]
e.g.  python examples/design_comparison.py pr.twitter 40000
"""

import sys

from repro.analysis import run_one
from repro.workloads import scaled_system
from repro.workloads.suite import WORKLOADS

CACHE_DESIGNS = ["simple", "unison", "dice", "baryon-64b", "baryon"]
FLAT_DESIGNS = ["hybrid2", "baryon-fa"]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "YCSB-A"
    n_accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000
    if workload not in WORKLOADS:
        raise SystemExit(f"unknown workload {workload!r}; choose from {sorted(WORKLOADS)}")

    config, sim_config = scaled_system(256)
    spec = WORKLOADS[workload]
    print(f"workload: {workload} — {spec.description}")
    print(f"footprint: {spec.footprint_factor:.1f}x fast memory; "
          f"writes ~{spec.write_fraction:.0%}; data '{spec.profile}'\n")

    print("cache scheme (normalized to Simple):")
    results = {
        d: run_one(workload, d, config, sim_config, n_accesses=n_accesses)
        for d in CACHE_DESIGNS
    }
    base = results["simple"].ipc
    print(f"{'design':<12} {'speedup':>8} {'serve':>8} {'bloat':>8} {'slow MB':>8}")
    for design, r in results.items():
        print(
            f"{design:<12} {r.ipc / base:>8.2f} {r.serve_rate:>8.2f}"
            f" {r.bandwidth_bloat:>8.2f} {r.slow_traffic_bytes >> 20:>8}"
        )

    print("\nflat scheme (normalized to Hybrid2):")
    results = {
        d: run_one(workload, d, config, sim_config, n_accesses=n_accesses)
        for d in FLAT_DESIGNS
    }
    base = results["hybrid2"].ipc
    for design, r in results.items():
        print(
            f"{design:<12} {r.ipc / base:>8.2f} {r.serve_rate:>8.2f}"
            f" {r.bandwidth_bloat:>8.2f} {r.slow_traffic_bytes >> 20:>8}"
        )


if __name__ == "__main__":
    main()
