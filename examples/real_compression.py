"""Drive Baryon with *real bytes* through the real FPC/BDI compressors.

Most simulations use the calibrated statistical compressibility oracle for
speed; this example closes the loop: it materializes actual block
contents with different value patterns, compresses them with the
from-scratch FPC and BDI implementations, shows the achieved compression
factors, and then runs the full controller against a content-backed
oracle whose every decision comes from really compressing the bytes.

Run:  python examples/real_compression.py
"""

import random

from repro import BaryonController
from repro.common.config import BaryonConfig, HybridLayout, StageConfig
from repro.compression import BdiCompressor, CompressionEngine, FpcCompressor
from repro.workloads import ContentBackedCompressibility, ContentStore

MB = 1 << 20


def show_compressors() -> None:
    fpc, bdi = FpcCompressor(), BdiCompressor()
    engine = CompressionEngine()
    print("pattern        FPC(B)  BDI(B)  best  quantized-CF  (of 256 B)")
    for pattern in ContentStore.PATTERNS:
        store = ContentStore(pattern=pattern, seed=1)
        data = bytes(store.block(0)[:256])
        f = fpc.compress(data)
        b = bdi.compress(data)
        assert fpc.decompress(f) == data and bdi.decompress(b) == data
        cf = engine.achievable_cf(bytes(store.block(0)), 0)
        best = "fpc" if f.compressed_bytes <= b.compressed_bytes else "bdi"
        print(
            f"{pattern:<14} {f.compressed_bytes:>6} {b.compressed_bytes:>7}"
            f"  {best:>4}  {cf:>6}"
        )


def run_controller_on_real_content() -> None:
    config = BaryonConfig(
        layout=HybridLayout(fast_capacity=2 * MB, slow_capacity=16 * MB),
        stage=StageConfig(size_bytes=128 * 1024, aging_period_accesses=256),
    )
    store = ContentStore(pattern="deltas", seed=3)
    # A zero-heavy region and an incompressible region, like real heaps.
    store.set_region_pattern(0, 200, "zeros")
    store.set_region_pattern(2000, 2400, "random")
    oracle = ContentBackedCompressibility(store, write_noise=0.1, seed=3)
    controller = BaryonController(config, seed=3)
    controller.oracle = oracle

    rng = random.Random(9)
    footprint = 8 * MB
    for i in range(8_000):
        addr = (rng.randrange(footprint) // 64) * 64
        if rng.random() < 0.5:  # hot region re-use
            addr = (rng.randrange(footprint // 6) // 64) * 64
        controller.access(addr, rng.random() < 0.3)

    stats = controller.stats
    print()
    print(f"accesses            : {stats.get('accesses')}")
    print(f"fast-memory serve   : {controller.serve_rate():.1%}")
    print(f"zero blocks staged  : {stats.get('zero_block_stages')}")
    print(f"commits             : {stats.get('commits')}")
    print(f"write overflows     : "
          f"{stats.get('stage_write_overflows') + stats.get('commit_write_overflows')}")
    wins_f = controller.oracle.engine.stats.get("wins_fpc")
    wins_b = controller.oracle.engine.stats.get("wins_bdi")
    print(f"compressor wins     : FPC {wins_f}, BDI {wins_b}")


if __name__ == "__main__":
    print("== real FPC/BDI on synthetic value patterns ==")
    show_compressors()
    print("\n== Baryon controller driven by real contents ==")
    run_controller_on_real_content()
