"""Capacity planning for a key-value store on hybrid memory.

A downstream scenario the paper's intro motivates: you run memcached on
a DDR4+NVM box and must pick how much DRAM to provision, and how large
the stage-area carve-out should be. This example sweeps both knobs under
a YCSB-B (read-mostly) load and prints where Baryon's compression and
sub-blocking bend the serve-rate curve.

Since PR 9 every sweep point is a :mod:`repro.serve` job spec, so the
same script runs two ways:

* **local** (default) — materialize each spec with
  :func:`repro.serve.build_configs` and simulate serially in-process;
* **client** (``--server URL``) — submit each spec to a running
  ``python -m repro serve`` instance. The first pass simulates; repeats
  of the same spec are answered from the fingerprint-keyed result cache
  in milliseconds, **bit-identical** to the local run (both modes build
  their configs through the same function).

Run::

    python examples/capacity_planning.py
    python -m repro serve --port 8642 &
    python examples/capacity_planning.py --server http://127.0.0.1:8642
"""

import argparse
import json
import time

from repro.serve import JobSpec, build_configs
from repro.serve.client import ServeClient

MB = 1 << 20

WORKLOAD = "YCSB-B"
DESIGN = "baryon"
SCALE = 256
# scaled_system(256)'s stage aging window; the sweeps pin it so the
# stage carve-out is the only variable.
AGING = 312


def sweep_points(n_accesses):
    """Every sweep point as ``(sweep, label, spec-dict)``."""
    points = []
    for fast_mb in (2, 3, 4, 8, 16):
        points.append(("dram", f"{fast_mb}", {
            "workloads": [WORKLOAD], "designs": [DESIGN],
            "n_accesses": n_accesses, "scale": SCALE,
            "overrides": {
                "layout": {
                    "fast_capacity": fast_mb * MB,
                    "slow_capacity": 8 * fast_mb * MB,
                    "associativity": 4,
                },
                "stage": {
                    "size_bytes": max(128 * 1024, fast_mb * MB // 64),
                    "aging_period_accesses": AGING,
                },
            },
        }))
    for stage_kb in (64, 128, 256, 512, 1024):
        points.append(("stage", f"{stage_kb}", {
            "workloads": [WORKLOAD], "designs": [DESIGN],
            "n_accesses": n_accesses, "scale": SCALE,
            "overrides": {
                "stage": {
                    "size_bytes": stage_kb * 1024,
                    "aging_period_accesses": AGING,
                },
            },
        }))
    return points


def run_local(spec_dict):
    """One point, serially in-process — the reference the served result
    must match bit for bit."""
    from repro.analysis import run_one

    spec = JobSpec.from_dict(spec_dict)
    config, sim_config = build_configs(spec)
    result = run_one(
        spec.workloads[0], spec.designs[0], config, sim_config,
        n_accesses=spec.n_accesses, seed=spec.seed,
    )
    return result.to_dict()


def run_served(client, spec_dict):
    out = client.run(spec_dict)
    return out["records"][0]["result"]


def print_tables(points):
    print("DRAM provisioning sweep (YCSB-B, 1:8 fast:slow):")
    print(f"{'fast MB':>8} {'serve':>8} {'IPC':>8} {'slow MB moved':>14}")
    for sweep, label, _, result in points:
        if sweep != "dram":
            continue
        serve = result["served_fast"] / max(1, result["memory_accesses"])
        ipc = result["instructions"] / result["cycles"]
        print(f"{label:>8} {serve:>8.2f} {ipc:>8.3f}"
              f" {result['slow_traffic_bytes'] >> 20:>14}")
    print("\nStage-area carve-out sweep (16 MB DRAM):")
    print(f"{'stage kB':>9} {'serve':>8} {'IPC':>8} {'commits':>9}")
    for sweep, label, _, result in points:
        if sweep != "stage":
            continue
        serve = result["served_fast"] / max(1, result["memory_accesses"])
        ipc = result["instructions"] / result["cycles"]
        commits = int(result.get("extra", {}).get("ctrl_commits", 0))
        print(f"{label:>9} {serve:>8.2f} {ipc:>8.3f} {commits:>9}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--server", default=None,
                        help="base URL of a running `python -m repro "
                             "serve`; omit to simulate locally")
    parser.add_argument("--accesses", type=int, default=40_000)
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also write {mode, elapsed_s, points} JSON "
                             "(for the CI cache-identity check)")
    args = parser.parse_args()

    client = ServeClient(args.server) if args.server else None
    rows = []
    start = time.perf_counter()
    for sweep, label, spec in sweep_points(args.accesses):
        result = (run_served(client, spec) if client is not None
                  else run_local(spec))
        rows.append((sweep, label, spec, result))
    elapsed = time.perf_counter() - start

    print_tables(rows)
    mode = "server" if client is not None else "local"
    print(f"\n{len(rows)} points in {elapsed:.2f}s ({mode} mode)")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as sink:
            json.dump({
                "mode": mode,
                "elapsed_s": elapsed,
                "points": [
                    {"sweep": sweep, "label": label, "spec": spec,
                     "result": result}
                    for sweep, label, spec, result in rows
                ],
            }, sink, indent=2, sort_keys=True)


if __name__ == "__main__":
    main()
