"""Capacity planning for a key-value store on hybrid memory.

A downstream scenario the paper's intro motivates: you run memcached on a
DDR4+NVM box and must pick how much DRAM to provision, and how large the
stage area carve-out should be. This example sweeps both knobs under a
YCSB-B (read-mostly) load and prints where Baryon's compression and
sub-blocking bend the serve-rate curve — i.e. how much DRAM compression
effectively "buys back".

Run:  python examples/capacity_planning.py
"""

import dataclasses

from repro import BaryonController, SystemSimulator
from repro.common.config import HybridLayout, StageConfig
from repro.workloads import build_workload, scaled_system

MB = 1 << 20


def run(config, sim_config, trace, seed=1):
    controller = BaryonController(config, seed=seed)
    trace.apply_compressibility(controller.oracle)
    return SystemSimulator(controller, sim_config).run(trace)


def sweep_fast_memory() -> None:
    base_config, sim_config = scaled_system(256)
    footprint_fast = base_config.layout.fast_capacity  # trace sized to this
    trace = build_workload("YCSB-B", footprint_fast, n_accesses=40_000)
    print("DRAM provisioning sweep (fixed 120 MB dataset):")
    print(f"{'fast MB':>8} {'serve':>8} {'IPC':>8} {'slow MB moved':>14}")
    for fast_mb in (2, 3, 4, 8, 16):
        layout = HybridLayout(
            fast_capacity=fast_mb * MB,
            slow_capacity=8 * fast_mb * MB,
            associativity=4,
        )
        stage = StageConfig(
            size_bytes=max(128 * 1024, fast_mb * MB // 64),
            aging_period_accesses=312,
        )
        config = dataclasses.replace(base_config, layout=layout, stage=stage)
        result = run(config, sim_config, trace)
        print(
            f"{fast_mb:>8} {result.serve_rate:>8.2f} {result.ipc:>8.3f}"
            f" {result.slow_traffic_bytes >> 20:>14}"
        )


def sweep_stage_size() -> None:
    config, sim_config = scaled_system(256)
    trace = build_workload("YCSB-B", config.layout.fast_capacity, n_accesses=40_000)
    print("\nStage-area carve-out sweep (16 MB DRAM):")
    print(f"{'stage kB':>9} {'serve':>8} {'IPC':>8} {'commits':>9}")
    for stage_kb in (64, 128, 256, 512, 1024):
        stage = StageConfig(size_bytes=stage_kb * 1024, aging_period_accesses=312)
        cfg = dataclasses.replace(config, stage=stage)
        controller = BaryonController(cfg, seed=1)
        trace.apply_compressibility(controller.oracle)
        result = SystemSimulator(controller, sim_config).run(trace)
        print(
            f"{stage_kb:>9} {result.serve_rate:>8.2f} {result.ipc:>8.3f}"
            f" {controller.stats.get('commits'):>9}"
        )


if __name__ == "__main__":
    sweep_fast_memory()
    sweep_stage_size()
