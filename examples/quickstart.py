"""Quickstart: simulate Baryon on a memcached/YCSB workload.

Builds a 1/256-scale version of the paper's Table I system (16 MB DDR4
"fast" + 128 MB NVM "slow"), generates a YCSB-A trace sized to stress the
fast-memory capacity, runs it through the cache hierarchy into the Baryon
controller, and prints the headline metrics.

Run:  python examples/quickstart.py
"""

from repro import BaryonController, SystemSimulator
from repro.workloads import build_workload, scaled_system


def main() -> None:
    # 1. A consistently scaled system: capacities shrink 256x, latencies,
    #    ratios and geometry stay at the paper's Table I values.
    config, sim_config = scaled_system(256)
    print(f"fast memory : {config.layout.fast_capacity >> 20} MB DDR4")
    print(f"slow memory : {config.layout.slow_capacity >> 20} MB NVM")
    print(f"stage area  : {config.stage.size_bytes >> 10} kB "
          f"({config.stage.num_sets(config.geometry)} sets x {config.stage.ways} ways)")

    # 2. A workload proxy: YCSB-A (50/50 read/update, Zipfian keys) with a
    #    7.5x-of-fast-memory footprint, as in the paper.
    trace = build_workload("YCSB-A", config.layout.fast_capacity, n_accesses=60_000)
    print(f"workload    : {trace.name}, {len(trace)} accesses, "
          f"{trace.footprint_bytes >> 20} MB footprint, "
          f"{trace.write_fraction:.0%} writes")

    # 3. The Baryon controller; the trace's compressibility regions are
    #    installed into its oracle (value compressibility per address).
    controller = BaryonController(config, seed=1)
    trace.apply_compressibility(controller.oracle)

    # 4. Simulate and report.
    result = SystemSimulator(controller, sim_config).run(trace)
    print()
    print(f"IPC                  : {result.ipc:.3f}")
    print(f"fast-memory serve    : {result.serve_rate:.1%}")
    print(f"bandwidth bloat      : {result.bandwidth_bloat:.2f}x")
    print(f"fast traffic         : {result.fast_traffic_bytes >> 20} MB")
    print(f"slow traffic         : {result.slow_traffic_bytes >> 20} MB")
    print(f"memory energy        : {result.energy.total_j * 1e3:.2f} mJ")
    print()
    print("access-flow case mix (Fig. 6):")
    total = sum(result.case_counts.values()) or 1
    for case, count in sorted(result.case_counts.items(), key=lambda kv: -kv[1]):
        print(f"  {case:<12} {count / total:6.1%}")


if __name__ == "__main__":
    main()
